#include "core/adaptive_grid.hpp"

#include <gtest/gtest.h>

#include "net/deployment.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {40.0, 40.0}};

Deployment nine_grid() { return grid_deployment(kField, 9); }
Deployment four_grid() { return grid_deployment(kField, 4); }

TEST(AdaptiveGrid, RejectsSillyBlockFactor) {
  EXPECT_THROW(build_facemap_adaptive(nine_grid(), 1.2, kField, 0.5, 1),
               std::invalid_argument);
}

TEST(AdaptiveGrid, SavesSignatureEvaluationsWhenBlocksFitInsideFaces) {
  // The double-level division pays off when blocks are small relative to
  // the faces (fine grids, moderate boundary density) — the regime the
  // paper's preprocessing targets.
  const AdaptiveBuildResult r = build_facemap_adaptive(four_grid(), 1.2, kField, 0.25, 4);
  EXPECT_LT(r.evaluations, r.uniform_evaluations);
  EXPECT_GT(r.savings(), 0.3);
  EXPECT_GT(r.total_blocks, r.refined_blocks);
}

TEST(AdaptiveGrid, DenseBoundariesDegradeTowardUniformCost) {
  // When nearly every block straddles a boundary the probe overhead makes
  // the adaptive build slightly *worse* than uniform — the documented
  // trade-off, pinned here so the cost model stays honest.
  const AdaptiveBuildResult r = build_facemap_adaptive(nine_grid(), 1.2, kField, 0.5, 8);
  EXPECT_GT(r.refined_blocks * 2, r.total_blocks);
  EXPECT_GT(r.savings(), -0.10);
}

TEST(AdaptiveGrid, GridGeometryMatchesUniformBuild) {
  const AdaptiveBuildResult r = build_facemap_adaptive(nine_grid(), 1.2, kField, 0.5, 8);
  const FaceMap uniform = FaceMap::build(nine_grid(), 1.2, kField, 0.5);
  EXPECT_EQ(r.map.grid().cell_count(), uniform.grid().cell_count());
  EXPECT_EQ(r.map.dimension(), uniform.dimension());
}

TEST(AdaptiveGrid, MislabelledCellFractionIsTiny) {
  // The probe approximation may stamp a block a boundary slips through;
  // quantify the damage against the exact uniform division.
  const double C = 1.2;
  const AdaptiveBuildResult r = build_facemap_adaptive(nine_grid(), C, kField, 0.5, 8);
  const FaceMap exact = FaceMap::build(nine_grid(), C, kField, 0.5);
  const UniformGrid& grid = exact.grid();
  std::size_t mismatched = 0;
  for (std::size_t flat = 0; flat < grid.cell_count(); ++flat) {
    const SignatureVector& a = r.map.face(r.map.face_of_cell(flat)).signature;
    const SignatureVector& b = exact.face(exact.face_of_cell(flat)).signature;
    if (a != b) ++mismatched;
  }
  EXPECT_LT(static_cast<double>(mismatched) / static_cast<double>(grid.cell_count()),
            0.02);
}

TEST(AdaptiveGrid, FaceCountCloseToUniform) {
  const AdaptiveBuildResult r = build_facemap_adaptive(nine_grid(), 1.2, kField, 0.5, 8);
  const FaceMap uniform = FaceMap::build(nine_grid(), 1.2, kField, 0.5);
  const double ratio = static_cast<double>(r.map.face_count()) /
                       static_cast<double>(uniform.face_count());
  EXPECT_GT(ratio, 0.8);
  EXPECT_LE(ratio, 1.05);
}

TEST(AdaptiveGrid, SmallerBlocksLocalizeBoundariesBetter) {
  const AdaptiveBuildResult big_blocks =
      build_facemap_adaptive(four_grid(), 1.2, kField, 0.25, 8);
  const AdaptiveBuildResult small_blocks =
      build_facemap_adaptive(four_grid(), 1.2, kField, 0.25, 4);
  // Smaller blocks refine a larger *fraction* of blocks but cover the
  // boundary more tightly; both regimes save work on this geometry.
  EXPECT_GT(big_blocks.savings(), 0.0);
  EXPECT_GT(small_blocks.savings(), big_blocks.savings());
}

TEST(AdaptiveGrid, DeterministicAcrossThreadCounts) {
  ThreadPool one(1);
  ThreadPool many(8);
  const AdaptiveBuildResult a = build_facemap_adaptive(nine_grid(), 1.2, kField, 0.5, 8, one);
  const AdaptiveBuildResult b = build_facemap_adaptive(nine_grid(), 1.2, kField, 0.5, 8, many);
  ASSERT_EQ(a.map.face_count(), b.map.face_count());
  EXPECT_EQ(a.evaluations, b.evaluations);
  for (std::size_t i = 0; i < a.map.face_count(); ++i)
    EXPECT_EQ(a.map.faces()[i].signature, b.map.faces()[i].signature);
}

}  // namespace
}  // namespace fttt
