#include "core/distributed_tracker.hpp"

#include <gtest/gtest.h>

#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"
#include "rf/uncertainty.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {100.0, 100.0}};

Deployment field_nodes(std::size_t n = 24) {
  return grid_deployment(kField, n);
}

GroupingSampling sample_at(const Deployment& nodes, Vec2 target,
                           std::uint64_t epoch = 0) {
  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 0.0, .d0 = 1.0};
  cfg.sensing_range = 60.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 3;
  const NoFaults faults;
  return collect_group(nodes, cfg, faults, epoch, 0.0,
                       [&](double) { return target; }, RngStream(3).substream(epoch));
}

DistributedTracker make_tracker(const Deployment& nodes, std::size_t clusters = 4) {
  DistributedTracker::Config cfg;
  cfg.clusters = clusters;
  cfg.eps = 0.0;
  cfg.grid_cell = 1.0;
  return DistributedTracker(nodes, 1.0, kField, cfg);
}

TEST(DistributedTracker, TooFewNodesThrows) {
  EXPECT_THROW(make_tracker({{0, {1.0, 1.0}}}), std::invalid_argument);
}

TEST(DistributedTracker, BuildsRequestedClusters) {
  const Deployment nodes = field_nodes();
  const DistributedTracker dt = make_tracker(nodes, 4);
  EXPECT_EQ(dt.cluster_count(), 4u);
  EXPECT_GT(dt.total_faces(), 0u);
}

TEST(DistributedTracker, PerHeadDimensionFarBelowGlobal) {
  const Deployment nodes = field_nodes(24);
  const DistributedTracker dt = make_tracker(nodes, 4);
  // Global dimension would be C(24,2) = 276; per-head should be much
  // smaller (clusters of ~6 nodes -> 15).
  EXPECT_LT(dt.max_dimension(), 276u / 3);
}

TEST(DistributedTracker, LocalizesInsideClusterResolution) {
  // Per-head resolution is bounded by the member count: a 4-node head
  // carves its territory into a handful of large faces, so the honest
  // accuracy contract is "within the face scale of the active cluster",
  // i.e. clearly better than guessing the cluster centroid, with the
  // exact-face match confirmed via similarity.
  const Deployment nodes = field_nodes();
  DistributedTracker dt = make_tracker(nodes, 4);
  // Targets deliberately off the deployment's symmetry axes: a point on
  // a bisector matches a degenerate line-shaped face whose centroid can
  // sit far along the line.
  for (Vec2 target : {Vec2{27.0, 22.0}, Vec2{73.0, 26.0}, Vec2{24.0, 71.0}}) {
    const TrackEstimate e = dt.localize(sample_at(nodes, target));
    EXPECT_LT(distance(e.position, target), 20.0) << target;
    EXPECT_GE(e.similarity, 1.0) << target;  // noiseless: (near-)exact match
  }
}

TEST(DistributedTracker, MoreMembersPerHeadSharpenTheFix) {
  // The documented trade: fewer clusters (more members each) -> finer
  // faces -> smaller error at the same target.
  const Deployment nodes = field_nodes();
  DistributedTracker coarse = make_tracker(nodes, 6);
  DistributedTracker fine = make_tracker(nodes, 2);
  double coarse_err = 0.0;
  double fine_err = 0.0;
  std::uint64_t epoch = 0;
  for (Vec2 target : {Vec2{27.0, 22.0}, Vec2{73.0, 26.0}, Vec2{24.0, 71.0},
                      Vec2{61.0, 58.0}}) {
    const auto g = sample_at(nodes, target, epoch++);
    coarse_err += distance(coarse.localize(g).position, target);
    fine_err += distance(fine.localize(g).position, target);
  }
  EXPECT_LT(fine_err, coarse_err);
}

TEST(DistributedTracker, HandsOffWhenTargetCrossesTheField) {
  const Deployment nodes = field_nodes();
  DistributedTracker dt = make_tracker(nodes, 4);
  // Walk from the south-west corner to the north-east corner.
  std::uint64_t epoch = 0;
  for (double s = 10.0; s <= 90.0; s += 5.0)
    dt.localize(sample_at(nodes, {s, s}, epoch++));
  EXPECT_GE(dt.handoffs(), 1u);
}

TEST(DistributedTracker, RoutesToTheNearestCluster) {
  const Deployment nodes = field_nodes();
  DistributedTracker dt = make_tracker(nodes, 4);
  dt.localize(sample_at(nodes, {10.0, 10.0}));
  const std::size_t active = dt.active_cluster();
  // The active cluster's centroid must be the one nearest the target.
  const auto& clusters = dt.clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (c == active) continue;
    EXPECT_LE(distance(clusters[active].centroid, {10.0, 10.0}),
              distance(clusters[c].centroid, {10.0, 10.0}) + 1e-9);
  }
}

TEST(DistributedTracker, SurvivesAllSilentEpochs) {
  const Deployment nodes = field_nodes();
  DistributedTracker dt = make_tracker(nodes, 4);
  GroupingSampling silent(nodes.size(), 3);
  const TrackEstimate e = dt.localize(silent);  // nothing heard anywhere
  EXPECT_TRUE(kField.contains(e.position));
  EXPECT_EQ(dt.handoffs(), 0u);
}

TEST(DistributedTracker, SingleMemberClustersGetMerged) {
  // 3 nodes, ask for 3 clusters: at least one would be a singleton; the
  // merge logic must still produce valid (>= 2 member) heads.
  const Deployment nodes{{0, {10.0, 10.0}}, {1, {12.0, 10.0}}, {2, {90.0, 90.0}}};
  DistributedTracker::Config cfg;
  cfg.clusters = 3;
  cfg.grid_cell = 2.0;
  const DistributedTracker dt(nodes, 1.2, kField, cfg);
  for (const Cluster& c : dt.clusters()) EXPECT_GE(c.members.size(), 2u);
}

TEST(DistributedTracker, LocalizeBatchMatchesPerTargetAccuracy) {
  // A multi-target frame routed through the per-head SoA batch path
  // honors the same noiseless accuracy contract as sequential localize().
  const Deployment nodes = field_nodes();
  DistributedTracker dt = make_tracker(nodes, 4);
  const std::vector<Vec2> targets{{27.0, 22.0}, {73.0, 26.0}, {24.0, 71.0}};
  std::vector<GroupingSampling> frame;
  std::uint64_t epoch = 0;
  for (Vec2 target : targets) frame.push_back(sample_at(nodes, target, epoch++));
  const std::vector<TrackEstimate> estimates = dt.localize_batch(frame);
  ASSERT_EQ(estimates.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_LT(distance(estimates[i].position, targets[i]), 20.0) << i;
    EXPECT_GE(estimates[i].similarity, 1.0) << i;
  }
}

TEST(DistributedTracker, LocalizeBatchLeavesHandoffBookkeepingUntouched) {
  // The frame path serves multiple independent targets at once, so it
  // must not advance the single-target sticky-head / handoff counters.
  const Deployment nodes = field_nodes();
  DistributedTracker dt = make_tracker(nodes, 4);
  (void)dt.localize(sample_at(nodes, {27.0, 22.0}, 0));
  const std::size_t active = dt.active_cluster();
  const std::size_t handoffs = dt.handoffs();
  const std::vector<GroupingSampling> frame{sample_at(nodes, {73.0, 26.0}, 1),
                                            sample_at(nodes, {24.0, 71.0}, 2)};
  (void)dt.localize_batch(frame);
  EXPECT_EQ(dt.active_cluster(), active);
  EXPECT_EQ(dt.handoffs(), handoffs);
}

TEST(DistributedTracker, NodeFailureRebuildsOwningHeadIncrementally) {
  const Deployment nodes = field_nodes();
  DistributedTracker dt = make_tracker(nodes, 4);
  const std::size_t faces_before = dt.total_faces();

  // Kill one node: exactly its owning head re-derives its division.
  EXPECT_TRUE(dt.on_node_failed(5));
  EXPECT_EQ(dt.map_rebuilds(), 1u);
  EXPECT_FALSE(dt.on_node_failed(5));  // already failed: no-op
  EXPECT_EQ(dt.map_rebuilds(), 1u);
  EXPECT_FALSE(dt.on_node_failed(999));  // unknown node
  const std::size_t faces_degraded = dt.total_faces();
  EXPECT_LT(faces_degraded, faces_before);  // one fewer node -> coarser head

  // Tracking keeps working against the degraded division.
  for (Vec2 target : {Vec2{27.0, 22.0}, Vec2{73.0, 26.0}}) {
    const TrackEstimate e = dt.localize(sample_at(nodes, target));
    EXPECT_LT(distance(e.position, target), 25.0) << target;
  }

  // Recovery restores the exact original division (the builder's plane
  // cache makes the fail/recover round trip rasterize nothing).
  EXPECT_TRUE(dt.on_node_recovered(5));
  EXPECT_FALSE(dt.on_node_recovered(5));  // already live: no-op
  EXPECT_EQ(dt.map_rebuilds(), 2u);
  EXPECT_EQ(dt.total_faces(), faces_before);
}

TEST(DistributedTracker, HeadBelowOnePairDefersRebuild) {
  // Three well-separated tight pairs force 2-member heads: killing both
  // members of one must not rebuild a sub-pair map — the head keeps
  // serving its previous division until a member recovers.
  const Deployment nodes{{0, {5.0, 5.0}},  {1, {12.0, 5.0}},
                         {2, {88.0, 5.0}}, {3, {95.0, 5.0}},
                         {4, {45.0, 95.0}}, {5, {52.0, 95.0}}};
  DistributedTracker dt = make_tracker(nodes, 3);
  const std::size_t faces_before = dt.total_faces();

  // Find two nodes sharing a cluster.
  NodeId a = 0, b = 0;
  bool found = false;
  for (const Cluster& c : dt.clusters()) {
    if (c.members.size() == 2) {
      a = c.members[0];
      b = c.members[1];
      found = true;
      break;
    }
  }
  if (!found) GTEST_SKIP() << "clustering produced no 2-member head";

  EXPECT_FALSE(dt.on_node_failed(a));  // 1 live member left: deferred
  EXPECT_FALSE(dt.on_node_failed(b));  // 0 live members: deferred
  EXPECT_EQ(dt.map_rebuilds(), 0u);
  EXPECT_EQ(dt.total_faces(), faces_before);  // old map still served
  EXPECT_FALSE(dt.on_node_recovered(a));      // still below a pair
  EXPECT_TRUE(dt.on_node_recovered(b));       // pair restored -> rebuild
  EXPECT_EQ(dt.total_faces(), faces_before);
  (void)dt.localize(sample_at(nodes, {50.0, 50.0}));
}

}  // namespace
}  // namespace fttt
