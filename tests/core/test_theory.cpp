#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"

namespace fttt {
namespace {

TEST(Theory, OnePairMissProbability) {
  EXPECT_DOUBLE_EQ(theory::one_pair_miss_probability(1), 1.0);
  EXPECT_DOUBLE_EQ(theory::one_pair_miss_probability(2), 0.5);
  EXPECT_DOUBLE_EQ(theory::one_pair_miss_probability(5), 1.0 / 16.0);
}

TEST(Theory, CaptureProbabilityMonotoneInK) {
  double prev = 0.0;
  for (std::size_t k = 2; k <= 12; ++k) {
    const double p = theory::all_flips_capture_probability(k, 45);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_GT(prev, 0.97);
}

TEST(Theory, CaptureProbabilityDecreasesWithPairs) {
  EXPECT_GT(theory::all_flips_capture_probability(5, 10),
            theory::all_flips_capture_probability(5, 100));
}

TEST(Theory, CaptureProbabilityMatchesMonteCarlo) {
  // Simulate the model behind Sec. 5.1 directly: each pair shows one of
  // two orders per instant with p = 1/2; a pair's flip is captured when
  // both orders appear within the k instants.
  RngStream rng(7);
  const std::size_t k = 4;
  const std::size_t pairs = 10;
  const int trials = 200000;
  int captured_all = 0;
  for (int t = 0; t < trials; ++t) {
    bool all = true;
    for (std::size_t p = 0; p < pairs && all; ++p) {
      bool saw_a = false;
      bool saw_b = false;
      for (std::size_t i = 0; i < k; ++i) (rng.bernoulli(0.5) ? saw_a : saw_b) = true;
      all = saw_a && saw_b;
    }
    if (all) ++captured_all;
  }
  const double simulated = static_cast<double>(captured_all) / trials;
  EXPECT_NEAR(simulated, theory::all_flips_capture_probability(k, pairs), 0.005);
}

TEST(Theory, InclusionExclusionMatchesClosedForm) {
  // Appendix I identity: the Eq. 8 alternating sum equals (1-f)^N.
  for (std::size_t k : {2u, 3u, 5u, 9u}) {
    for (std::size_t pairs : {1u, 2u, 5u, 10u, 20u, 45u}) {
      EXPECT_NEAR(theory::capture_probability_inclusion_exclusion(k, pairs),
                  theory::all_flips_capture_probability(k, pairs), 1e-9)
          << "k=" << k << " N=" << pairs;
    }
  }
}

TEST(Theory, ExpectedUncapturedPairsMatchesAppendixII) {
  // E_N = N * f is both the uncaptured-pair count and the inter-face
  // error expectation — the two Appendix II views of the same number.
  EXPECT_DOUBLE_EQ(theory::expected_uncaptured_pairs(5, 12),
                   theory::expected_interface_error(5, 12));
}

TEST(Theory, RequiredSamplingTimesPaperExample) {
  // Sec. 5.1: 20 nodes (C(20,2) = 190 pairs), lambda = 0.99 -> k = 16.
  EXPECT_EQ(theory::required_sampling_times(0.99, 190), 16u);
}

TEST(Theory, RequiredSamplingTimesAchievesTarget) {
  for (double lambda : {0.9, 0.99, 0.999}) {
    for (std::size_t pairs : {2u, 10u, 100u, 780u}) {
      const std::size_t k = theory::required_sampling_times(lambda, pairs);
      // The published bound uses exponent N-1; it must guarantee at least
      // the (1-f)^(N-1) target, and in practice covers (1-f)^N too.
      const double f = theory::one_pair_miss_probability(k);
      EXPECT_GT(std::pow(1.0 - f, static_cast<double>(pairs - 1)), lambda);
    }
  }
}

TEST(Theory, RequiredSamplingTimesGrowsSlowly) {
  // Logarithmic dependence: 4x the pairs costs ~2 extra samples.
  const std::size_t k1 = theory::required_sampling_times(0.99, 50);
  const std::size_t k2 = theory::required_sampling_times(0.99, 200);
  EXPECT_LE(k2 - k1, 3u);
}

TEST(Theory, ExpectedInterfaceErrorLinearInPairs) {
  EXPECT_DOUBLE_EQ(theory::expected_interface_error(5, 10),
                   10.0 * theory::one_pair_miss_probability(5));
  EXPECT_DOUBLE_EQ(theory::expected_interface_error(5, 20),
                   2.0 * theory::expected_interface_error(5, 10));
}

TEST(Theory, ErrorBoundDecreasesWithSampling) {
  double prev = theory::worst_case_error_bound(1, 0.002, 40.0);
  for (std::size_t k = 2; k <= 9; ++k) {
    const double e = theory::worst_case_error_bound(k, 0.002, 40.0);
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(Theory, ErrorBoundDecreasesWithDensity) {
  EXPECT_GT(theory::worst_case_error_bound(5, 0.001, 40.0),
            theory::worst_case_error_bound(5, 0.004, 40.0));
}

TEST(Theory, ErrorBoundInfiniteWhenTooSparse) {
  // Fewer than 2 expected nodes in range: no pairs, bound is infinite.
  EXPECT_TRUE(std::isinf(theory::worst_case_error_bound(5, 1e-9, 1.0)));
}

TEST(Theory, ErrorBoundScalesAsEq10) {
  // Eq. 10: E = O(1 / (2^((k-1)/2) rho R)). Doubling rho should halve the
  // bound (asymptotically; n >> 1 here).
  const double e1 = theory::worst_case_error_bound(5, 0.004, 40.0);
  const double e2 = theory::worst_case_error_bound(5, 0.008, 40.0);
  EXPECT_NEAR(e1 / e2, 2.0, 0.1);
  // Increasing k by 2 divides the bound by ~2 (factor 2^(k/2) per 2 k).
  const double e3 = theory::worst_case_error_bound(7, 0.004, 40.0);
  EXPECT_NEAR(e1 / e3, 2.0, 1e-9);
}

}  // namespace
}  // namespace fttt
