#include "core/facemap_builder.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "common/random.hpp"
#include "core/batch_matcher.hpp"
#include "core/pairs.hpp"
#include "core/signature_table.hpp"
#include "net/deployment.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {20.0, 20.0}};
constexpr double kCell = 0.5;

/// The bit-equivalence contract, in full: same ids, signatures, centroids
/// (exact doubles — the builder accumulates in the same order), cell
/// ownership, cell counts, adjacency and node roster as the legacy build.
void expect_identical(const FaceMap& got, const FaceMap& want) {
  ASSERT_EQ(got.face_count(), want.face_count());
  ASSERT_EQ(got.dimension(), want.dimension());
  ASSERT_EQ(got.nodes().size(), want.nodes().size());
  for (std::size_t i = 0; i < want.nodes().size(); ++i) {
    EXPECT_EQ(got.nodes()[i].id, want.nodes()[i].id);
    EXPECT_EQ(got.nodes()[i].position, want.nodes()[i].position);
  }
  for (const Face& w : want.faces()) {
    const Face& g = got.face(w.id);
    EXPECT_EQ(g.id, w.id);
    EXPECT_EQ(g.signature, w.signature) << "face " << w.id;
    EXPECT_EQ(g.centroid, w.centroid) << "face " << w.id;  // exact, not near
    EXPECT_EQ(g.cell_count, w.cell_count) << "face " << w.id;
    EXPECT_EQ(got.neighbors(w.id), want.neighbors(w.id)) << "face " << w.id;
  }
  const std::size_t cells = want.grid().cell_count();
  for (std::size_t flat = 0; flat < cells; ++flat)
    ASSERT_EQ(got.face_of_cell(flat), want.face_of_cell(flat)) << "cell " << flat;
}

TEST(FaceMapBuilder, FullBuildBitIdenticalToLegacy) {
  RngStream rng(2026);
  const double ratios[] = {1.0, 1.2, 2.0, 5.0};
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    for (double C : ratios) {
      RngStream sub = rng.substream(n, static_cast<std::uint64_t>(C * 16));
      const Deployment nodes = random_deployment(kField, n, sub);
      const FaceMap want = FaceMap::build(nodes, C, kField, kCell);
      FaceMapBuilder builder(nodes, C, kField, kCell);
      const FaceMap got = builder.build();
      SCOPED_TRACE(testing::Message() << "n=" << n << " C=" << C);
      expect_identical(got, want);
      EXPECT_EQ(builder.last_planes_rasterized(), pair_count(n));
    }
  }
}

TEST(FaceMapBuilder, GridDeploymentAndAxisAlignedPairs) {
  // Lattice deployments put many node pairs exactly on shared x or y
  // coordinates — the bisector gx == 0 row-uniform path and near-vertical
  // Apollonius axes all get exercised.
  for (double C : {1.0, 1.5, 4.0}) {
    const Deployment nodes = grid_deployment(kField, 9);
    const FaceMap want = FaceMap::build(nodes, C, kField, kCell);
    FaceMapBuilder builder(nodes, C, kField, kCell);
    SCOPED_TRACE(testing::Message() << "C=" << C);
    expect_identical(builder.build(), want);
  }
}

TEST(FaceMapBuilder, CoincidentNodesDegenerateToExactEvaluation) {
  Deployment nodes{{0, {5.0, 5.0}}, {1, {5.0, 5.0}}, {2, {15.0, 12.0}}};
  for (double C : {1.0, 3.0}) {
    const FaceMap want = FaceMap::build(nodes, C, kField, kCell);
    FaceMapBuilder builder(nodes, C, kField, kCell);
    SCOPED_TRACE(testing::Message() << "C=" << C);
    expect_identical(builder.build(), want);
  }
}

TEST(FaceMapBuilder, ValidationMatchesLegacyBuild) {
  EXPECT_THROW(FaceMapBuilder({{0, {1.0, 1.0}}}, 1.2, kField, kCell),
               std::invalid_argument);
  Deployment bad{{0, {1.0, 1.0}}, {7, {2.0, 2.0}}};  // non-dense ids
  EXPECT_THROW(FaceMapBuilder(bad, 1.2, kField, kCell), std::invalid_argument);
  Deployment two{{0, {1.0, 1.0}}, {1, {2.0, 2.0}}};
  EXPECT_THROW(FaceMapBuilder(two, 0.9, kField, kCell), std::invalid_argument);

  // Fewer than two *active* nodes: the build (not the ctor) throws.
  FaceMapBuilder builder(two, 1.2, kField, kCell);
  builder.deactivate(1);
  EXPECT_THROW(builder.build(), std::invalid_argument);
  builder.activate(1);
  EXPECT_NO_THROW(builder.build());
}

TEST(FaceMapBuilder, IncrementalKillReviveSequenceBitIdentical) {
  // Property: after ANY single-node kill/revive sequence, the incremental
  // rebuild equals a from-scratch legacy build of the surviving
  // deployment — and pure kill/revive deltas rasterize nothing (every
  // plane of the full roster is already cached).
  RngStream rng(7);
  for (double C : {1.0, 2.0, 4.0}) {
    RngStream sub = rng.substream(static_cast<std::uint64_t>(C * 8));
    const std::size_t n = 7;
    const Deployment nodes = random_deployment(kField, n, sub);
    FaceMapBuilder builder(nodes, C, kField, kCell);
    builder.build();
    std::vector<char> alive(n, 1);
    std::size_t live = n;
    for (int step = 0; step < 12; ++step) {
      const NodeId id = static_cast<NodeId>(sub.next_u64() % n);
      if (alive[id] && live > 2) {
        builder.deactivate(id);
        alive[id] = 0;
        --live;
      } else if (!alive[id]) {
        builder.activate(id);
        alive[id] = 1;
        ++live;
      } else {
        continue;
      }
      const FaceMap got = builder.build();
      EXPECT_EQ(builder.last_planes_rasterized(), 0u) << "step " << step;
      const FaceMap want =
          FaceMap::build(builder.active_deployment(), C, kField, kCell);
      SCOPED_TRACE(testing::Message() << "C=" << C << " step " << step);
      expect_identical(got, want);
    }
  }
}

TEST(FaceMapBuilder, MoveAndAddRasterizeOnlyTouchedPlanes) {
  RngStream rng(11);
  const std::size_t n = 6;
  const Deployment nodes = random_deployment(kField, n, rng);
  const double C = 3.0;
  FaceMapBuilder builder(nodes, C, kField, kCell);
  builder.build();

  builder.move_node(2, {3.25, 17.5});
  FaceMap got = builder.build();
  EXPECT_EQ(builder.last_planes_rasterized(), n - 1);
  expect_identical(got, FaceMap::build(builder.active_deployment(), C, kField, kCell));

  const NodeId added = builder.add_node({10.0, 2.5});
  EXPECT_EQ(added, n);
  got = builder.build();
  EXPECT_EQ(builder.last_planes_rasterized(), n);  // the new node's pairs
  expect_identical(got, FaceMap::build(builder.active_deployment(), C, kField, kCell));

  // A dead node's planes are not rebuilt when a *different* node moves.
  builder.deactivate(0);
  builder.move_node(4, {18.0, 18.0});
  got = builder.build();
  EXPECT_EQ(builder.last_planes_rasterized(), builder.active_count() - 1);
  expect_identical(got, FaceMap::build(builder.active_deployment(), C, kField, kCell));
}

TEST(FaceMapBuilder, SignatureTableMatchesLegacyTransposition) {
  RngStream rng(23);
  const Deployment nodes = random_deployment(kField, 6, rng);
  FaceMapBuilder builder(nodes, 4.0, kField, kCell);
  const FaceMap map = builder.build();
  const SignatureTable got = builder.take_signature_table();
  const SignatureTable want(map);
  ASSERT_EQ(got.face_count(), want.face_count());
  ASSERT_EQ(got.dimension(), want.dimension());
  ASSERT_EQ(got.padded_faces(), want.padded_faces());
  for (std::size_t p = 0; p < want.dimension(); ++p)
    for (std::size_t f = 0; f < want.padded_faces(); ++f)
      ASSERT_EQ(got.plane(p)[f], want.plane(p)[f]) << "plane " << p << " col " << f;
}

TEST(FaceMapBuilder, TakeSignatureTableConsumes) {
  Deployment two{{0, {4.0, 4.0}}, {1, {16.0, 16.0}}};
  FaceMapBuilder builder(two, 2.0, kField, kCell);
  EXPECT_THROW(builder.take_signature_table(), std::logic_error);
  builder.build();
  EXPECT_NO_THROW(builder.take_signature_table());
  EXPECT_THROW(builder.take_signature_table(), std::logic_error);
  builder.build();  // a fresh build re-stocks the table
  EXPECT_NO_THROW(builder.take_signature_table());
}

TEST(FaceMapBuilder, BatchMatcherAdoptsTableZeroTransposition) {
  RngStream rng(31);
  const Deployment nodes = random_deployment(kField, 5, rng);
  FaceMapBuilder builder(nodes, 4.0, kField, kCell);
  auto map = std::make_shared<const FaceMap>(builder.build());
  const BatchMatcher adopted(map, builder.take_signature_table());
  const BatchMatcher rebuilt(map);

  SamplingVector vd;
  vd.value.assign(map->dimension(), 0.0);
  vd.known.assign(map->dimension(), true);
  for (std::size_t c = 0; c < vd.dimension(); ++c) {
    vd.known[c] = (c % 3) != 0;
    vd.value[c] = (c % 2 == 0) ? 1.0 : -1.0;
  }
  const MatchResult a = adopted.match_one(vd);
  const MatchResult b = rebuilt.match_one(vd);
  EXPECT_EQ(a.face, b.face);
  EXPECT_EQ(a.similarity, b.similarity);
  EXPECT_EQ(a.tied_faces, b.tied_faces);

  // A table that disagrees with the map is rejected.
  FaceMapBuilder other(random_deployment(kField, 7, rng), 4.0, kField, kCell);
  other.build();
  EXPECT_THROW(BatchMatcher(map, other.take_signature_table()),
               std::invalid_argument);
}

TEST(FaceMapBuilder, FaceAtOutsideFieldThrows) {
  // Regression for the hardened FaceMap::face_at contract: in-field and
  // boundary points resolve (boundary clamps to the adjacent cell),
  // strictly-outside points throw instead of silently aliasing to an
  // edge cell.
  Deployment two{{0, {4.0, 4.0}}, {1, {16.0, 16.0}}};
  FaceMapBuilder builder(two, 2.0, kField, kCell);
  const FaceMap map = builder.build();
  EXPECT_NO_THROW(map.face_at({10.0, 10.0}));
  EXPECT_NO_THROW(map.face_at({0.0, 0.0}));
  EXPECT_NO_THROW(map.face_at({20.0, 20.0}));  // far corner, clamps inward
  EXPECT_THROW(map.face_at({-0.001, 10.0}), std::out_of_range);
  EXPECT_THROW(map.face_at({10.0, 20.001}), std::out_of_range);
  EXPECT_THROW(map.face_at({25.0, -3.0}), std::out_of_range);
}

TEST(FaceMapBuilder, BuildIntoBitIdenticalAcrossRosterResets) {
  // The campaign trial loop: one pooled builder, a fresh random roster
  // per trial, products rebuilt in place. Every rebuild must match a
  // cold FaceMap::build + SignatureTable of that roster exactly, and the
  // product objects themselves must be reused, not reallocated.
  RngStream rng(407);
  FaceMapBuilder::BuildProducts products;
  std::optional<FaceMapBuilder> builder;
  const FaceMap* first_map = nullptr;
  const SignatureTable* first_table = nullptr;
  for (int trial = 0; trial < 4; ++trial) {
    const Deployment nodes = random_deployment(kField, 6, rng);
    if (builder) builder->reset_roster(nodes);
    else builder.emplace(nodes, 2.0, kField, kCell);
    builder->build_into(products);
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    expect_identical(*products.map, FaceMap::build(nodes, 2.0, kField, kCell));
    const SignatureTable want(*products.map);
    ASSERT_EQ(products.table->face_count(), want.face_count());
    ASSERT_EQ(products.table->padded_faces(), want.padded_faces());
    for (std::size_t p = 0; p < want.dimension(); ++p)
      for (std::size_t f = 0; f < want.padded_faces(); ++f)
        ASSERT_EQ(products.table->plane(p)[f], want.plane(p)[f])
            << "plane " << p << " col " << f;
    if (trial == 0) {
      first_map = products.map.get();
      first_table = products.table.get();
    } else {
      EXPECT_EQ(products.map.get(), first_map);      // recycled, not reallocated
      EXPECT_EQ(products.table.get(), first_table);
    }
  }
}

TEST(FaceMapBuilder, BuildIntoRefusesRetainedAliases) {
  // Overwriting products under a live reader would mutate shared state;
  // the use-count contract fails loudly instead.
  RngStream rng(409);
  const Deployment nodes = random_deployment(kField, 5, rng);
  FaceMapBuilder builder(nodes, 2.0, kField, kCell);
  FaceMapBuilder::BuildProducts products;
  builder.build_into(products);
  const ScopedContractHandler guard(throwing_contract_handler);
  {
    const std::shared_ptr<FaceMap> alias = products.map;
    EXPECT_THROW(builder.build_into(products), ContractError);
  }
  {
    const std::shared_ptr<SignatureTable> alias = products.table;
    EXPECT_THROW(builder.build_into(products), ContractError);
  }
  EXPECT_NO_THROW(builder.build_into(products));  // aliases gone: fine again
}

}  // namespace
}  // namespace fttt
