#include "core/pairs.hpp"

#include <gtest/gtest.h>

namespace fttt {
namespace {

TEST(PairCount, SmallValues) {
  EXPECT_EQ(pair_count(0), 0u);
  EXPECT_EQ(pair_count(1), 0u);
  EXPECT_EQ(pair_count(2), 1u);
  EXPECT_EQ(pair_count(4), 6u);
  EXPECT_EQ(pair_count(20), 190u);  // the paper's Sec. 5.1 example
  EXPECT_EQ(pair_count(40), 780u);
}

TEST(PairIndex, CanonicalOrderForFourNodes) {
  // Paper Def. 5 order: (0,1),(0,2),(0,3),(1,2),(1,3),(2,3).
  EXPECT_EQ(pair_index(0, 1, 4), 0u);
  EXPECT_EQ(pair_index(0, 2, 4), 1u);
  EXPECT_EQ(pair_index(0, 3, 4), 2u);
  EXPECT_EQ(pair_index(1, 2, 4), 3u);
  EXPECT_EQ(pair_index(1, 3, 4), 4u);
  EXPECT_EQ(pair_index(2, 3, 4), 5u);
}

TEST(PairIndex, BijectionWithPairAt) {
  for (std::size_t n : {2u, 3u, 5u, 10u, 23u}) {
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        EXPECT_EQ(pair_index(i, j, n), expected);
        const auto [pi, pj] = pair_at(expected, n);
        EXPECT_EQ(pi, i);
        EXPECT_EQ(pj, j);
        ++expected;
      }
    }
    EXPECT_EQ(expected, pair_count(n));
  }
}

TEST(PairAt, FirstAndLast) {
  const auto first = pair_at(0, 10);
  EXPECT_EQ(first.first, 0u);
  EXPECT_EQ(first.second, 1u);
  const auto last = pair_at(pair_count(10) - 1, 10);
  EXPECT_EQ(last.first, 8u);
  EXPECT_EQ(last.second, 9u);
}

}  // namespace
}  // namespace fttt
