#include "core/sampling_vector.hpp"

#include <span>

#include <gtest/gtest.h>

#include "core/pairs.hpp"

namespace fttt {
namespace {

/// Build a grouping sampling directly from a row-major matrix
/// (rows = instants, columns = nodes), with optional missing columns.
GroupingSampling make_group(const std::vector<std::vector<double>>& matrix,
                            const std::vector<bool>& present = {}) {
  const std::size_t nodes = matrix.empty() ? 0 : matrix[0].size();
  GroupingSampling g(nodes, matrix.size());
  for (std::size_t node = 0; node < nodes; ++node) {
    if (!present.empty() && !present[node]) continue;
    std::span<double> column = g.set_column(node);
    for (std::size_t t = 0; t < matrix.size(); ++t) column[t] = matrix[t][node];
  }
  return g;
}

TEST(CompareRss, DeadbandSemantics) {
  EXPECT_EQ(compare_rss(10.0, 5.0, 1.0), +1);
  EXPECT_EQ(compare_rss(5.0, 10.0, 1.0), -1);
  EXPECT_EQ(compare_rss(10.0, 9.5, 1.0), 0);  // within resolution
  EXPECT_EQ(compare_rss(10.0, 9.5, 0.0), +1);
}

TEST(SamplingVector, PaperFig5WorkedExample) {
  // Fig. 5: four sensors, six instants; pair (3,4) flips, all other pairs
  // are ordinal with node 2 strongest, then 1, then {3,4}:
  // sampling vector [-1, 1, 1, 1, 1, 0] over pairs
  // (1,2),(1,3),(1,4),(2,3),(2,4),(3,4)  [1-based paper ids].
  const std::vector<std::vector<double>> matrix{
      // n1    n2    n3    n4
      {-50.0, -45.0, -60.0, -62.0},
      {-50.0, -45.0, -62.0, -60.0},  // (3,4) flips here
      {-50.0, -45.0, -60.0, -62.0},
      {-50.0, -45.0, -61.0, -63.0},
      {-50.0, -45.0, -60.0, -62.0},
      {-50.0, -45.0, -60.0, -62.0},
  };
  const SamplingVector vd = build_sampling_vector(make_group(matrix), 0.0,
                                                  VectorMode::kBasic);
  ASSERT_EQ(vd.dimension(), 6u);
  EXPECT_DOUBLE_EQ(vd.value[0], -1.0);  // (1,2): node 2 always stronger
  EXPECT_DOUBLE_EQ(vd.value[1], 1.0);   // (1,3)
  EXPECT_DOUBLE_EQ(vd.value[2], 1.0);   // (1,4)
  EXPECT_DOUBLE_EQ(vd.value[3], 1.0);   // (2,3)
  EXPECT_DOUBLE_EQ(vd.value[4], 1.0);   // (2,4)
  EXPECT_DOUBLE_EQ(vd.value[5], 0.0);   // (3,4): flipped
  EXPECT_EQ(vd.unknown_count(), 0u);
}

TEST(SamplingVector, PaperSec6ExtendedExample) {
  // Sec. 6 / Fig. 9: six instants; pair (1,2) shows 4 sequential orders
  // and 2 reverse -> extended value (4-2)/6 = 1/3 where the basic value
  // is 0; pair (n1 strongest otherwise) values stay +/-1.
  const std::vector<std::vector<double>> matrix{
      // n1    n2    n3    n4   (n1 vs n2 flips; n3, n4 well below; n4 > n3)
      {-45.0, -50.0, -70.0, -60.0},
      {-45.0, -50.0, -70.0, -60.0},
      {-50.0, -45.0, -70.0, -60.0},  // reverse
      {-45.0, -50.0, -70.0, -60.0},
      {-50.0, -45.0, -70.0, -60.0},  // reverse
      {-45.0, -50.0, -70.0, -60.0},
  };
  const SamplingVector basic = build_sampling_vector(make_group(matrix), 0.0,
                                                     VectorMode::kBasic);
  const SamplingVector ext = build_sampling_vector(make_group(matrix), 0.0,
                                                   VectorMode::kExtended);
  // Pair order: (1,2),(1,3),(1,4),(2,3),(2,4),(3,4).
  EXPECT_DOUBLE_EQ(basic.value[0], 0.0);
  EXPECT_NEAR(ext.value[0], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ext.value[1], 1.0);   // (1,3) ordinal
  EXPECT_DOUBLE_EQ(ext.value[5], -1.0);  // (3,4): node 4 always stronger
}

TEST(SamplingVector, PaperSec443FaultExample) {
  // Sec. 4.4(3): only n1 and n3 report, with rss_1 > rss_3. Pair values:
  // (1,2)=1, (1,3)=1, (1,4)=1, (2,3)=-1, (2,4)=*, (3,4)=1.
  const std::vector<std::vector<double>> matrix{
      {-50.0, 0.0, -60.0, 0.0},
      {-50.0, 0.0, -60.0, 0.0},
  };
  const SamplingVector vd = build_sampling_vector(
      make_group(matrix, {true, false, true, false}), 0.0, VectorMode::kBasic);
  EXPECT_DOUBLE_EQ(vd.value[0], 1.0);   // (1,2): n2 missing
  EXPECT_DOUBLE_EQ(vd.value[1], 1.0);   // (1,3): both present, 1 stronger
  EXPECT_DOUBLE_EQ(vd.value[2], 1.0);   // (1,4): n4 missing
  EXPECT_DOUBLE_EQ(vd.value[3], -1.0);  // (2,3): n2 missing, n3 present
  EXPECT_FALSE(vd.known[4]);            // (2,4): both missing -> '*'
  EXPECT_DOUBLE_EQ(vd.value[5], 1.0);   // (3,4): n4 missing
  EXPECT_EQ(vd.unknown_count(), 1u);
}

TEST(SamplingVector, ResolutionTiesForceFlip) {
  // Two nodes within eps at every instant: basic value must be 0 (the
  // hardware cannot order them), extended value 0 as well.
  const std::vector<std::vector<double>> matrix{
      {-50.0, -50.3},
      {-50.1, -50.0},
      {-50.2, -50.1},
  };
  const SamplingVector basic =
      build_sampling_vector(make_group(matrix), 1.0, VectorMode::kBasic);
  const SamplingVector ext =
      build_sampling_vector(make_group(matrix), 1.0, VectorMode::kExtended);
  EXPECT_DOUBLE_EQ(basic.value[0], 0.0);
  EXPECT_DOUBLE_EQ(ext.value[0], 0.0);
}

TEST(SamplingVector, ExtendedValueBounds) {
  // Extended values always lie in [-1, 1].
  const std::vector<std::vector<double>> matrix{
      {-40.0, -50.0}, {-60.0, -50.0}, {-40.0, -50.0}, {-40.0, -50.0}};
  const SamplingVector ext =
      build_sampling_vector(make_group(matrix), 0.0, VectorMode::kExtended);
  EXPECT_NEAR(ext.value[0], 0.5, 1e-12);  // (3 - 1) / 4
  EXPECT_GE(ext.value[0], -1.0);
  EXPECT_LE(ext.value[0], 1.0);
}

TEST(SamplingVector, AllNodesMissingAllStars) {
  const std::vector<std::vector<double>> matrix{{0.0, 0.0, 0.0}};
  const SamplingVector vd = build_sampling_vector(
      make_group(matrix, {false, false, false}), 0.0, VectorMode::kBasic);
  EXPECT_EQ(vd.unknown_count(), pair_count(3));
}

TEST(SamplingVector, SingleInstantGroupIsAlwaysOrdinal) {
  const std::vector<std::vector<double>> matrix{{-40.0, -50.0}};
  const SamplingVector vd =
      build_sampling_vector(make_group(matrix), 0.0, VectorMode::kBasic);
  EXPECT_DOUBLE_EQ(vd.value[0], 1.0);
}

TEST(SamplingVector, RaggedColumnIsUnrepresentable) {
  // The SoA store rejects the short column at insertion, so a ragged
  // grouping sampling can no longer reach build_sampling_vector at all.
  GroupingSampling g(2, 3);
  const std::vector<double> good{1.0, 2.0, 3.0};
  const std::vector<double> ragged{1.0, 2.0};  // too short
  g.set_column(0, good);
  EXPECT_THROW(g.set_column(1, ragged), std::invalid_argument);
  EXPECT_EQ(g.reporting_count(), 1u);
}

}  // namespace
}  // namespace fttt
