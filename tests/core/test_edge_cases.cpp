// Edge cases across the core stack: degenerate geometry, extreme inputs,
// '*'-heavy vectors — the situations a deployed system hits eventually.
#include <gtest/gtest.h>

#include <memory>

#include "core/matcher.hpp"
#include "core/similarity.hpp"
#include "core/tracker.hpp"
#include "net/deployment.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {20.0, 20.0}};

TEST(EdgeCases, DuplicateSensorPositionsAreAlwaysUncertain) {
  // Two co-located sensors can never be ordered: their pair reads 0 at
  // every point, and the face map still builds.
  const Deployment nodes{{0, {10.0, 10.0}}, {1, {10.0, 10.0}}, {2, {5.0, 5.0}}};
  const SignatureVector sig = signature_at({3.0, 17.0}, nodes, 1.2);
  EXPECT_EQ(sig[0], 0);  // pair (0,1): identical positions
  const FaceMap map = FaceMap::build(nodes, 1.2, kField, 1.0);
  EXPECT_GT(map.face_count(), 0u);
}

TEST(EdgeCases, TwoSensorMapHasThreeishFaces) {
  // The minimal deployment: one pair, uncertain annulus between the two
  // Apollonius circles -> nearer-0, uncertain, nearer-1 regions.
  const Deployment nodes{{0, {5.0, 10.0}}, {1, {15.0, 10.0}}};
  const FaceMap map = FaceMap::build(nodes, 1.3, kField, 0.25);
  EXPECT_GE(map.face_count(), 3u);
  EXPECT_LE(map.face_count(), 4u);  // grid may split an annulus lobe
  EXPECT_EQ(map.dimension(), 1u);
}

TEST(EdgeCases, SensorsOutsideTheDividedField) {
  // The division region need not contain the sensors (cluster territories
  // routinely exclude far members).
  const Deployment nodes{{0, {-10.0, 10.0}}, {1, {30.0, 10.0}}};
  const FaceMap map = FaceMap::build(nodes, 1.2, kField, 0.5);
  EXPECT_GT(map.face_count(), 0u);
  const FaceId f = map.face_at({10.0, 10.0});
  EXPECT_LT(f, map.face_count());
}

TEST(EdgeCases, AllStarVectorMatchesEverythingEqually) {
  const Deployment nodes{{0, {5.0, 5.0}}, {1, {15.0, 5.0}}, {2, {10.0, 15.0}}};
  const FaceMap map = FaceMap::build(nodes, 1.2, kField, 0.5);
  SamplingVector vd;
  vd.value.assign(map.dimension(), 0.0);
  vd.known.assign(map.dimension(), false);
  const ExhaustiveMatcher matcher;
  const MatchResult r = matcher.match(map, vd);
  EXPECT_EQ(r.tied_faces.size(), map.face_count());
}

TEST(EdgeCases, SingleKnownComponentStillDiscriminates) {
  const Deployment nodes{{0, {5.0, 10.0}}, {1, {15.0, 10.0}}};
  const FaceMap map = FaceMap::build(nodes, 1.3, kField, 0.25);
  SamplingVector vd;
  vd.value.assign(1, 1.0);  // decisively nearer node 0
  vd.known.assign(1, true);
  const ExhaustiveMatcher matcher;
  const MatchResult r = matcher.match(map, vd);
  // The matched face must sit on node 0's side.
  EXPECT_LT(distance(r.position, nodes[0].position),
            distance(r.position, nodes[1].position));
}

TEST(EdgeCases, HeuristicLocalOptimaAreHonest) {
  // The hill climb can get trapped away from the exact match (that is why
  // FtttTracker has the exhaustive fallback), but any trap must be a
  // genuine local optimum with *strictly lower* similarity — never a tie
  // that hides the exact match — and warm-ish starts (the goal's own
  // neighborhood) must always reach it.
  const Deployment nodes{{0, {5.0, 5.0}}, {1, {15.0, 5.0}}, {2, {10.0, 15.0}}};
  const FaceMap map = FaceMap::build(nodes, 1.2, kField, 0.5);
  const HeuristicMatcher matcher;
  const Face& goal = map.faces()[map.face_count() / 2];
  SamplingVector vd;
  for (SigValue v : goal.signature) {
    vd.value.push_back(static_cast<double>(v));
    vd.known.push_back(true);
  }
  std::size_t reached = 0;
  for (FaceId start = 0; start < map.face_count(); ++start) {
    const MatchResult r = matcher.match(map, vd, start);
    if (r.face == goal.id) {
      ++reached;
    } else {
      EXPECT_LT(r.similarity, similarity(vd, goal.signature)) << "start " << start;
    }
  }
  EXPECT_GT(reached * 2, map.face_count());  // most starts converge
  for (FaceId nb : map.neighbors(goal.id))
    EXPECT_EQ(matcher.match(map, vd, nb).face, goal.id);
}

TEST(EdgeCases, ZeroDurationTrackerStatsStayZero) {
  const Deployment nodes{{0, {5.0, 5.0}}, {1, {15.0, 5.0}}};
  auto map = std::make_shared<const FaceMap>(FaceMap::build(nodes, 1.2, kField, 0.5));
  const FtttTracker tracker(map, {});
  EXPECT_EQ(tracker.stats().localizations, 0u);
  EXPECT_EQ(tracker.stats().faces_examined, 0u);
}

TEST(EdgeCases, HugeCellSizeGivesOneCellMap) {
  const Deployment nodes{{0, {5.0, 5.0}}, {1, {15.0, 5.0}}};
  const FaceMap map = FaceMap::build(nodes, 1.2, kField, 100.0);
  EXPECT_EQ(map.grid().cell_count(), 1u);
  EXPECT_EQ(map.face_count(), 1u);
  EXPECT_TRUE(map.neighbors(0).empty());
}

}  // namespace
}  // namespace fttt
