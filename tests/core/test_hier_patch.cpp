// Delta-patched division tier and index: bit-equivalence against the
// from-scratch builds (core/hier_patch.cpp contract) across churn
// sequences, thread counts and the fallback edges.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/random.hpp"
#include "core/division_delta.hpp"
#include "core/facemap.hpp"
#include "core/facemap_builder.hpp"
#include "core/hier_facemap.hpp"
#include "core/signature_index.hpp"
#include "net/deployment.hpp"
#include "parallel/thread_pool.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {40.0, 40.0}};
constexpr double kCell = 0.5;
constexpr double kC = 1.3;

/// Bit-equivalence of two coarse tiers: identical shape and identical
/// mask bytes on every level and plane.
void expect_hier_identical(const HierFaceMap& got, const HierFaceMap& want) {
  ASSERT_EQ(got.face_count(), want.face_count());
  ASSERT_EQ(got.dimension(), want.dimension());
  ASSERT_EQ(got.level_count(), want.level_count());
  ASSERT_EQ(got.bytes(), want.bytes());
  for (std::size_t l = 0; l < want.level_count(); ++l) {
    ASSERT_EQ(got.node_count(l), want.node_count(l)) << "level " << l;
    for (std::size_t c = 0; c < want.dimension(); ++c)
      for (std::size_t i = 0; i < want.node_count(l); ++i)
        ASSERT_EQ(got.mask(l, c, i), want.mask(l, c, i))
            << "level " << l << " pair " << c << " node " << i;
  }
}

/// Bit-equivalence of two indexes: identical CSR rows on every level.
void expect_index_identical(const SignatureIndex& got, const SignatureIndex& want) {
  ASSERT_EQ(got.tile_count(), want.tile_count());
  ASSERT_EQ(got.dimension(), want.dimension());
  ASSERT_EQ(got.level_count(), want.level_count());
  ASSERT_EQ(got.mixed_entries(), want.mixed_entries());
  ASSERT_EQ(got.bytes(), want.bytes());
  for (std::size_t t = 0; t < want.tile_count(); ++t) {
    const auto g = got.mixed_planes(t);
    const auto w = want.mixed_planes(t);
    ASSERT_EQ(std::vector<std::uint32_t>(g.begin(), g.end()),
              std::vector<std::uint32_t>(w.begin(), w.end()))
        << "tile " << t;
  }
  // Upper node counts follow the tier recurrence from the tile count.
  std::size_t nodes = want.tile_count();
  for (std::size_t l = 1; l < want.level_count(); ++l) {
    nodes = (nodes + HierFaceMap::kFanout - 1) / HierFaceMap::kFanout;
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto g = got.varying_planes(l, i);
      const auto w = want.varying_planes(l, i);
      ASSERT_EQ(std::vector<std::uint32_t>(g.begin(), g.end()),
                std::vector<std::uint32_t>(w.begin(), w.end()))
          << "level " << l << " node " << i;
    }
  }
}

/// Apply fail -> revive -> fail churn steps to `builder`, and after each
/// step check that patch_hierarchy + SignatureIndex::patched are
/// bit-identical to the from-scratch builds on `pool`.
void run_churn_equivalence(std::size_t sensors, std::uint64_t seed,
                           ThreadPool& pool) {
  RngStream rng(seed);
  const Deployment nodes = random_deployment(kField, sensors, rng);
  FaceMapBuilder builder(nodes, kC, kField, kCell, pool);

  FaceMap prev_map = builder.build();
  HierFaceMap prev_hier = builder.build_hierarchy();
  SignatureIndex prev_index = SignatureIndex::build(prev_hier, pool);

  const NodeId victim = static_cast<NodeId>(sensors / 2);
  const NodeId victim2 = static_cast<NodeId>(sensors / 3);
  const struct {
    NodeId id;
    bool fail;
  } steps[] = {{victim, true}, {victim, false}, {victim2, true}};

  int step_no = 0;
  for (const auto& step : steps) {
    SCOPED_TRACE(testing::Message()
                 << "sensors " << sensors << " seed " << seed << " step "
                 << step_no++ << (step.fail ? " fail " : " revive ") << step.id);
    if (step.fail)
      builder.deactivate(step.id);
    else
      builder.activate(step.id);

    FaceMap next_map = builder.build();
    const DivisionDelta delta = builder.delta_since(prev_map, next_map);
    ASSERT_TRUE(delta.valid);

    const HierFaceMap want_hier = builder.build_hierarchy();
    HierPatchReport report;
    const HierFaceMap got_hier =
        builder.patch_hierarchy(prev_hier, delta, &report);
    expect_hier_identical(got_hier, want_hier);

    // Churn only moves boundaries near the victim: with several tiles
    // most copy. (A single tile can legitimately recompute everywhere —
    // its one new tile draws faces from more than one old tile.)
    if (want_hier.node_count(0) > 1) EXPECT_GT(report.copied_tiles, 0u);
    EXPECT_EQ(report.copied_tiles + report.recomputed_tiles,
              want_hier.dimension() * want_hier.node_count(0));

    const SignatureIndex want_index = SignatureIndex::build(want_hier, pool);
    if (report.structure_matched) {
      const SignatureIndex got_index =
          SignatureIndex::patched(got_hier, prev_index, delta, report, pool);
      expect_index_identical(got_index, want_index);
      prev_index = got_index;
    } else {
      prev_index = want_index;
    }
    prev_map = std::move(next_map);
    prev_hier = got_hier;
  }
}

TEST(HierPatch, FailReviveFailBitIdenticalMultiTile) {
  // 14 sensors on a 80x80-cell field: enough faces for several level-0
  // tiles, so cross-tile copies and the upper levels are all exercised.
  ThreadPool pool(4);
  RngStream probe(21);
  const Deployment nodes = random_deployment(kField, 14, probe);
  FaceMapBuilder b(nodes, kC, kField, kCell, pool);
  b.build();
  const HierFaceMap h = b.build_hierarchy();
  ASSERT_GT(h.face_count(), HierFaceMap::kTileFaces);  // multi-tile fixture
  run_churn_equivalence(14, 21, pool);
}

TEST(HierPatch, SingleTileSmallFixture) {
  // 4 sensors: few faces, a single level, the degenerate shallow shape.
  ThreadPool pool(2);
  run_churn_equivalence(4, 5, pool);
}

TEST(HierPatch, BitIdenticalAcrossThreadCounts) {
  for (const std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool pool(threads);
    SCOPED_TRACE(testing::Message() << "threads " << threads);
    run_churn_equivalence(11, 33, pool);
  }
}

TEST(HierPatch, MoveNodePatchesAddedPlanes) {
  // move_node re-rasterizes the moved node's planes: delta_since must
  // exclude them from the survivor remap (their cell data changed) and
  // the patch must recompute every tile they cover.
  ThreadPool pool(4);
  RngStream rng(9);
  const Deployment nodes = random_deployment(kField, 10, rng);
  FaceMapBuilder builder(nodes, kC, kField, kCell, pool);
  FaceMap prev_map = builder.build();
  HierFaceMap prev_hier = builder.build_hierarchy();
  SignatureIndex prev_index = SignatureIndex::build(prev_hier, pool);

  builder.move_node(3, {11.0, 27.0});
  FaceMap next_map = builder.build();
  const DivisionDelta delta = builder.delta_since(prev_map, next_map);
  ASSERT_TRUE(delta.valid);
  // The moved node's n-1 planes count as added (no old plane to reuse).
  std::size_t added = 0;
  for (const std::uint32_t po : delta.plane_to_old)
    if (po == DivisionDelta::kNone) ++added;
  EXPECT_EQ(added, nodes.size() - 1);

  const HierFaceMap want = builder.build_hierarchy();
  HierPatchReport report;
  const HierFaceMap got = builder.patch_hierarchy(prev_hier, delta, &report);
  expect_hier_identical(got, want);
  if (report.structure_matched) {
    expect_index_identical(
        SignatureIndex::patched(got, prev_index, delta, report, pool),
        SignatureIndex::build(want, pool));
  }
}

TEST(HierPatch, DeltaInvalidOnFirstBuildAndAfterReset) {
  ThreadPool pool(2);
  RngStream rng(13);
  const Deployment nodes = random_deployment(kField, 6, rng);
  FaceMapBuilder builder(nodes, kC, kField, kCell, pool);

  // Fewer than two builds: nothing to connect.
  FaceMap first = builder.build();
  EXPECT_FALSE(builder.delta_since(first, first).valid);

  builder.deactivate(1);
  FaceMap second = builder.build();
  EXPECT_TRUE(builder.delta_since(first, second).valid);

  // reset_roster clears the pair bookkeeping: the next delta cannot
  // connect until two fresh builds exist.
  builder.reset_roster(nodes);
  FaceMap third = builder.build();
  EXPECT_FALSE(builder.delta_since(second, third).valid);

  // And an invalid delta is rejected by the patch, not silently used.
  const HierFaceMap hier = builder.build_hierarchy();
  EXPECT_THROW(builder.patch_hierarchy(hier, DivisionDelta{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fttt
