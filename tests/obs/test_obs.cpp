// Observability layer: registry semantics, histogram summaries, span
// recording, exporters, and the runtime on/off gate. Metric names are
// unique per test because the registry is process-global by design.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>

namespace fttt::obs {
namespace {

/// Restores the recording switch (tests toggle it freely).
struct ScopedRecording {
  explicit ScopedRecording(bool on) { set_enabled(on); }
  ~ScopedRecording() { set_enabled(false); }
};

TEST(ObsRegistry, CounterFindOrCreateAccumulates) {
  Counter& a = counter("test.registry.ctr");
  Counter& b = counter("test.registry.ctr");
  EXPECT_EQ(&a, &b);
  const std::uint64_t before = a.value();
  a.add(3);
  b.add();
  EXPECT_EQ(a.value(), before + 4);
}

TEST(ObsRegistry, GaugeLastWriteWins) {
  Gauge& g = gauge("test.registry.gge");
  g.set(7);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
}

TEST(ObsRegistry, HistogramKeepsFirstUnit) {
  Histogram& h = histogram("test.registry.hst", "ms");
  Histogram& again = histogram("test.registry.hst", "frames");
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(h.unit(), "ms");
}

TEST(ObsHistogram, ExactMomentsAndBandedQuantiles) {
  Histogram& h = histogram("test.hist.moments", "us");
  for (double v : {1.0, 10.0, 100.0, 1000.0}) h.record(v);
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 1111.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  // Quantiles come from log bins 0.125 decades wide: accept the band.
  EXPECT_GE(s.p50, 10.0 * 0.7);
  EXPECT_LE(s.p50, 10.0 * 1.5);
  EXPECT_GE(s.p99, 1000.0 * 0.7);
  EXPECT_LE(s.p99, 1000.0 * 1.5);
}

TEST(ObsHistogram, NonPositiveValuesClampIntoLowestBin) {
  Histogram& h = histogram("test.hist.clamp", "us");
  h.record(0.0);
  h.record(-5.0);
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, -5.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(ObsClock, NowNsStrictlyPositiveAndMonotonic) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_GT(a, 0u);
  EXPECT_GE(b, a);
}

TEST(ObsSpan, RecordsDurationWhenEnabled) {
  ScopedRecording rec(true);
  SpanSite& site = span_site("test.span.enabled");
  { Span span{site}; }
  const Histogram::Summary s = site.hist->summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.min, 0.0);
}

TEST(ObsSpan, NoopWhenDisabled) {
  set_enabled(false);
  SpanSite& site = span_site("test.span.disabled");
  { Span span{site}; }
  EXPECT_EQ(site.hist->summary().count, 0u);
}

TEST(ObsSpan, ExportedAsChromeTraceEvent) {
  ScopedRecording rec(true);
  SpanSite& site = span_site("test.span.exported");
  { Span span{site}; }
  std::ostringstream os;
  write_chrome_trace(os);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("test.span.exported"), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObsExport, RingOverflowCountsDrops) {
  ScopedRecording rec(true);
  set_ring_capacity(4);
  // A fresh thread gets a fresh (4-event) ring; 10 spans overflow it.
  std::thread t([] {
    SpanSite& site = span_site("test.ring.overflow");
    for (int i = 0; i < 10; ++i) Span span{site};
  });
  t.join();
  set_ring_capacity(16384);  // restore the default for later tests
  const std::uint64_t before = counter("obs.trace.dropped").value();
  std::ostringstream os;
  write_chrome_trace(os);
  EXPECT_GE(counter("obs.trace.dropped").value(), before + 6);
}

TEST(ObsExport, SnapshotIsNameSorted) {
  counter("test.sort.b");
  counter("test.sort.a");
  const MetricsSnapshot snap = snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
}

TEST(ObsExport, MetricsJsonHasAllSections) {
  counter("test.json.ctr").add(5);
  gauge("test.json.gge").set(9);
  histogram("test.json.hst", "us").record(2.5);
  std::ostringstream os;
  write_metrics_json(os);
  const std::string doc = os.str();
  EXPECT_EQ(doc.front(), '{');
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"test.json.ctr\": 5"), std::string::npos);
  EXPECT_NE(doc.find("\"test.json.gge\": 9"), std::string::npos);
  EXPECT_NE(doc.find("\"unit\": \"us\""), std::string::npos);
}

TEST(ObsExport, MetricsTextMentionsEveryKind) {
  counter("test.text.ctr").add(1);
  gauge("test.text.gge").set(4);
  histogram("test.text.hst", "us").record(1.0);
  std::ostringstream os;
  write_metrics_text(os);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("counter   test.text.ctr"), std::string::npos);
  EXPECT_NE(doc.find("gauge     test.text.gge"), std::string::npos);
  EXPECT_NE(doc.find("histogram test.text.hst"), std::string::npos);
}

TEST(ObsMacros, RecordOnlyWhileEnabled) {
  if (!kCompiledIn) GTEST_SKIP() << "obs macros compiled out in this build";
  set_enabled(false);
  int evaluations = 0;
  const auto count_eval = [&] {
    ++evaluations;
    return 1;
  };
  FTTT_OBS_COUNT("test.macro.gate", count_eval());
  EXPECT_EQ(evaluations, 0) << "delta must not be evaluated while off";
  EXPECT_EQ(counter("test.macro.gate").value(), 0u);

  ScopedRecording rec(true);
  FTTT_OBS_COUNT("test.macro.gate", count_eval());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(counter("test.macro.gate").value(), 1u);
}

TEST(ObsMacros, GaugeHistSpanEndToEnd) {
  if (!kCompiledIn) GTEST_SKIP() << "obs macros compiled out in this build";
  ScopedRecording rec(true);
  FTTT_OBS_GAUGE_SET("test.macro.gge", 42);
  FTTT_OBS_HIST("test.macro.hst", "items", 17);
  {
    FTTT_OBS_SPAN("test.macro.span");
  }
  EXPECT_EQ(gauge("test.macro.gge").value(), 42);
  EXPECT_EQ(histogram("test.macro.hst", "items").summary().count, 1u);
  EXPECT_EQ(histogram("test.macro.span", "us").summary().count, 1u);
}

TEST(ObsMacros, NowNsFollowsTheGate) {
  if (!kCompiledIn) GTEST_SKIP() << "obs macros compiled out in this build";
  set_enabled(false);
  EXPECT_EQ(FTTT_OBS_NOW_NS(), 0u);
  ScopedRecording rec(true);
  EXPECT_GT(FTTT_OBS_NOW_NS(), 0u);
}

TEST(ObsReset, ZeroesValuesKeepsNames) {
  ScopedRecording rec(true);
  counter("test.reset.ctr").add(3);
  gauge("test.reset.gge").set(8);
  histogram("test.reset.hst", "us").record(4.0);
  SpanSite& site = span_site("test.reset.span");
  { Span span{site}; }
  reset();
  EXPECT_EQ(counter("test.reset.ctr").value(), 0u);
  EXPECT_EQ(gauge("test.reset.gge").value(), 0);
  EXPECT_EQ(histogram("test.reset.hst", "us").summary().count, 0u);
  EXPECT_EQ(site.hist->summary().count, 0u);
  std::ostringstream os;
  write_chrome_trace(os);
  EXPECT_EQ(os.str().find("test.reset.span"), std::string::npos);
}

}  // namespace
}  // namespace fttt::obs
