// Compiled with FTTT_DISABLE_OBS forced on for this TU (guarded: the
// whole build may already define it via -DFTTT_OBS=OFF): proves the
// instrumentation macros compile out completely — arguments still
// type-check but are never evaluated, even while recording is enabled —
// and that the registry/exporter API keeps working so an FTTT_OBS=OFF
// binary still links and emits (empty) artifacts.
#ifndef FTTT_DISABLE_OBS
#define FTTT_DISABLE_OBS 1
#endif

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

static_assert(FTTT_OBS_ENABLED == 0,
              "this TU must compile with the obs macros disabled");
static_assert(!fttt::obs::kCompiledIn,
              "kCompiledIn must mirror the per-TU macro gate");

namespace fttt::obs {
namespace {

TEST(ObsOff, MacrosDoNotEvaluateArguments) {
  set_enabled(true);
  int evaluations = 0;
  const auto count_eval = [&] {
    ++evaluations;
    return 1;
  };
  FTTT_OBS_COUNT("testoff.ctr", count_eval());
  FTTT_OBS_GAUGE_SET("testoff.gge", count_eval());
  FTTT_OBS_HIST("testoff.hst", "items", count_eval());
  FTTT_OBS_SPAN("testoff.span");
  set_enabled(false);
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(counter("testoff.ctr").value(), 0u);
  EXPECT_EQ(gauge("testoff.gge").value(), 0);
  EXPECT_EQ(histogram("testoff.hst", "items").summary().count, 0u);
  EXPECT_EQ(histogram("testoff.span", "us").summary().count, 0u);
}

TEST(ObsOff, NowNsMacroIsZero) {
  set_enabled(true);
  EXPECT_EQ(FTTT_OBS_NOW_NS(), static_cast<std::uint64_t>(0));
  set_enabled(false);
}

TEST(ObsOff, ApiAndExportersStillLink) {
  // Direct API calls bypass the macro gate: recording works, so the
  // exporters stay useful for code that opts in explicitly.
  counter("testoff.api.ctr").add(2);
  std::ostringstream metrics;
  write_metrics_json(metrics);
  EXPECT_NE(metrics.str().find("\"testoff.api.ctr\": 2"), std::string::npos);
  std::ostringstream trace;
  write_chrome_trace(trace);
  EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace fttt::obs
