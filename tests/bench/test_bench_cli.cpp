// Self-test of the shared bench CLI plumbing (bench_common): flag
// parsing, the --threads pool selection, and the scenario defaults the
// whole bench suite inherits.
#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fttt::bench {
namespace {

Options parse(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return parse_options(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchCli, Defaults) {
  const Options opt = parse({});
  EXPECT_FALSE(opt.fast);
  EXPECT_EQ(opt.trials, 10u);
  EXPECT_DOUBLE_EQ(opt.duration, 30.0);
  EXPECT_EQ(opt.threads, 0u);
  EXPECT_FALSE(opt.csv_path.has_value());
}

TEST(BenchCli, FastShrinksBudget) {
  const Options opt = parse({"--fast"});
  EXPECT_TRUE(opt.fast);
  EXPECT_EQ(opt.trials, 3u);
  EXPECT_DOUBLE_EQ(opt.duration, 10.0);
}

TEST(BenchCli, TrialsAndThreadsParsed) {
  const Options opt = parse({"--trials", "7", "--threads", "3"});
  EXPECT_EQ(opt.trials, 7u);
  EXPECT_EQ(opt.threads, 3u);
}

TEST(BenchCli, ThreadsAfterFastSticks) {
  const Options opt = parse({"--fast", "--threads", "2"});
  EXPECT_TRUE(opt.fast);
  EXPECT_EQ(opt.threads, 2u);
}

TEST(BenchCli, CsvPathParsed) {
  const Options opt = parse({"--csv", "out.csv"});
  ASSERT_TRUE(opt.csv_path.has_value());
  EXPECT_EQ(*opt.csv_path, "out.csv");
}

TEST(BenchCli, BenchPoolZeroIsGlobal) {
  Options opt;
  opt.threads = 0;
  BenchPool pool(opt);
  EXPECT_EQ(&pool.pool(), &ThreadPool::global());
}

TEST(BenchCli, BenchPoolOwnsRequestedWorkers) {
  Options opt;
  opt.threads = 3;
  BenchPool pool(opt);
  EXPECT_NE(&pool.pool(), &ThreadPool::global());
  EXPECT_EQ(pool.pool().thread_count(), 3u);
}

TEST(BenchCli, DefaultScenarioAppliesOptions) {
  Options opt;
  opt.duration = 12.5;
  const ScenarioConfig cfg = default_scenario(opt);
  EXPECT_DOUBLE_EQ(cfg.duration, 12.5);
  EXPECT_DOUBLE_EQ(cfg.grid_cell, 2.0);
  EXPECT_EQ(cfg.channel, Channel::kBounded);
}

}  // namespace
}  // namespace fttt::bench
