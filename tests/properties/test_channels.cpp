// Channel-level properties tying the Apollonius geometry to the sampling
// statistics — parameterized across noise settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "core/sampling_vector.hpp"
#include "core/signature.hpp"
#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"
#include "rf/uncertainty.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {60.0, 60.0}};

// ---------------------------------------------------------------------------
// Property (bounded channel): a pair strictly outside its uncertain
// annulus can never report the *wrong* sign — sign flips are confined to
// the annulus by construction. Basic sampling values therefore never
// contradict the signature where both are decisive.
// ---------------------------------------------------------------------------

struct BoundedParams {
  std::size_t sensors;
  double eps;
  std::uint64_t seed;
};

class BoundedChannelSigns : public ::testing::TestWithParam<BoundedParams> {};

TEST_P(BoundedChannelSigns, DecisiveValuesNeverContradictSignature) {
  const auto [n, eps, seed] = GetParam();
  RngStream rng(seed);
  const Deployment nodes = random_deployment(kField, n, rng);

  const double beta = 4.0;
  const double C = uncertainty_constant(eps, beta, 6.0);
  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = beta, .sigma = 6.0, .d0 = 1.0};
  cfg.model.noise = NoiseKind::kBounded;
  cfg.model.bounded_amplitude = bounded_noise_amplitude(C, beta);
  cfg.sensing_range = 1000.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 5;
  const NoFaults faults;

  for (int trial = 0; trial < 25; ++trial) {
    const Vec2 target{rng.uniform(2.0, 58.0), rng.uniform(2.0, 58.0)};
    const bool too_close = std::any_of(nodes.begin(), nodes.end(), [&](const SensorNode& s) {
      return distance(s.position, target) < 1.5;
    });
    if (too_close) continue;
    const GroupingSampling group = collect_group(
        nodes, cfg, faults, static_cast<std::uint64_t>(trial), 0.0,
        [&](double) { return target; }, rng.substream(static_cast<std::uint64_t>(trial)));
    // eps = 0 at comparison time isolates the channel's own flip
    // confinement from the resolution deadband.
    const SamplingVector vd = build_sampling_vector(group, 0.0, VectorMode::kBasic);
    const SignatureVector vs = signature_at(target, nodes, C);
    for (std::size_t c = 0; c < vs.size(); ++c) {
      if (vs[c] == 0 || vd.value[c] == 0.0) continue;
      EXPECT_GT(vd.value[c] * static_cast<double>(vs[c]), 0.0)
          << "component " << c << " target " << target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoundedChannelSigns,
                         ::testing::Values(BoundedParams{5, 0.5, 61},
                                           BoundedParams{8, 1.0, 62},
                                           BoundedParams{12, 2.0, 63},
                                           BoundedParams{8, 3.0, 64}));

// ---------------------------------------------------------------------------
// Property (Gaussian channel): the extended node-pair value is an
// unbiased-ish estimator of 1 - 2 Phi(-gap / (sqrt(2) sigma)) for a pair
// with mean-RSS gap `gap` (eps = 0). Checked against Monte-Carlo over
// many groups.
// ---------------------------------------------------------------------------

class ExtendedValueExpectation : public ::testing::TestWithParam<double> {};

TEST_P(ExtendedValueExpectation, MatchesGaussianOrderProbability) {
  const double gap = GetParam();  // dB, node 0 stronger
  const double sigma = 6.0;

  GroupingSampling group(2, 5);

  RngStream rng(4242);
  double sum = 0.0;
  const int groups = 40000;
  for (int g = 0; g < groups; ++g) {
    std::span<double> a = group.set_column(0);
    std::span<double> b = group.set_column(1);
    for (std::size_t t = 0; t < 5; ++t) {
      a[t] = gap + rng.normal(0.0, sigma);
      b[t] = rng.normal(0.0, sigma);
    }
    sum += build_sampling_vector(group, 0.0, VectorMode::kExtended).value[0];
  }
  const double measured = sum / groups;
  const double phi = 0.5 * std::erfc(gap / (std::sqrt(2.0) * sigma) / std::sqrt(2.0));
  const double expected = 1.0 - 2.0 * phi;
  EXPECT_NEAR(measured, expected, 0.01) << "gap " << gap;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExtendedValueExpectation,
                         ::testing::Values(0.0, 2.0, 5.0, 10.0, 20.0));

// ---------------------------------------------------------------------------
// Property: under the Gaussian channel the probability that a basic pair
// value reads 0 (flip observed) grows monotonically with k — the
// information-collapse mechanism behind the inverted Fig. 12(b) trend.
// ---------------------------------------------------------------------------

TEST(GaussianChannel, FlipObservationGrowsWithK) {
  const double gap = 6.0;
  const double sigma = 6.0;
  RngStream rng(999);
  double prev_rate = -1.0;
  for (std::size_t k : {2u, 4u, 8u, 16u}) {
    int flipped = 0;
    const int groups = 20000;
    for (int g = 0; g < groups; ++g) {
      GroupingSampling group(2, k);
      std::span<double> a = group.set_column(0);
      std::span<double> b = group.set_column(1);
      for (std::size_t t = 0; t < k; ++t) {
        a[t] = gap + rng.normal(0.0, sigma);
        b[t] = rng.normal(0.0, sigma);
      }
      if (build_sampling_vector(group, 0.0, VectorMode::kBasic).value[0] == 0.0)
        ++flipped;
    }
    const double rate = static_cast<double>(flipped) / groups;
    EXPECT_GT(rate, prev_rate) << "k=" << k;
    prev_rate = rate;
  }
  EXPECT_GT(prev_rate, 0.5);  // at k=16, most groups see both orders
}

}  // namespace
}  // namespace fttt
