// Parameterized property sweeps over the core invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/matcher.hpp"
#include "core/pairs.hpp"
#include "core/similarity.hpp"
#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"
#include "rf/uncertainty.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {50.0, 50.0}};

// ---------------------------------------------------------------------------
// Property: with zero noise (sigma = 0), the sampling vector of a
// stationary target equals its signature vector computed with
// C = uncertainty_constant(eps, beta, 0) = 10^(eps / (10 beta)).
// This is the exact consistency between the runtime (eps deadband) and
// preprocessing (Apollonius ratio) sides of FTTT — mean RSS gap >= eps
// iff distance ratio >= C when sigma = 0.
// ---------------------------------------------------------------------------

struct ConsistencyParams {
  std::size_t sensors;
  double eps;
  std::uint64_t seed;
};

class NoiselessConsistency : public ::testing::TestWithParam<ConsistencyParams> {};

TEST_P(NoiselessConsistency, SamplingVectorEqualsSignature) {
  const auto [n, eps, seed] = GetParam();
  RngStream rng(seed);
  const Deployment nodes = random_deployment(kField, n, rng);
  const double beta = 4.0;
  const double C = uncertainty_constant(eps, beta, 0.0);

  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = beta, .sigma = 0.0, .d0 = 1.0};
  cfg.sensing_range = 1000.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 4;
  const NoFaults faults;

  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 target{rng.uniform(2.0, 48.0), rng.uniform(2.0, 48.0)};
    // Skip targets pathologically close to a sensor (inside d0 the model
    // clamps and the ratio argument breaks down).
    const bool too_close = std::any_of(nodes.begin(), nodes.end(), [&](const SensorNode& s) {
      return distance(s.position, target) < 1.5;
    });
    if (too_close) continue;

    const GroupingSampling group = collect_group(
        nodes, cfg, faults, 0, 0.0, [&](double) { return target; }, RngStream(1));
    const SamplingVector vd = build_sampling_vector(group, eps, VectorMode::kBasic);
    const SignatureVector vs = signature_at(target, nodes, C);
    ASSERT_EQ(vd.dimension(), vs.size());
    for (std::size_t c = 0; c < vs.size(); ++c) {
      EXPECT_TRUE(vd.known[c]);
      EXPECT_DOUBLE_EQ(vd.value[c], static_cast<double>(vs[c]))
          << "component " << c << " target " << target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoiselessConsistency,
    ::testing::Values(ConsistencyParams{4, 0.5, 11}, ConsistencyParams{4, 2.0, 12},
                      ConsistencyParams{7, 1.0, 13}, ConsistencyParams{10, 1.0, 14},
                      ConsistencyParams{10, 3.0, 15}, ConsistencyParams{15, 0.5, 16}));

// ---------------------------------------------------------------------------
// Property: Theorem 1 holds for the vast majority of neighbor-face links
// across deployments and C values (grid raster can merge thin faces).
// ---------------------------------------------------------------------------

struct Theorem1Params {
  std::size_t sensors;
  double C;
  std::uint64_t seed;
};

class Theorem1Property : public ::testing::TestWithParam<Theorem1Params> {};

TEST_P(Theorem1Property, UnitLinkFractionImprovesAsGridRefines) {
  // Theorem 1 is exact in the continuous arrangement; the raster merges
  // several boundary crossings into one cell step, so the unit-distance
  // fraction is below 1 but must *increase* as the grid refines
  // (convergence to the theorem) and stay the dominant case.
  const auto [n, C, seed] = GetParam();
  RngStream rng(seed);
  const Deployment nodes = random_deployment(kField, n, rng);
  const FaceMap coarse = FaceMap::build(nodes, C, kField, 1.0);
  const FaceMap fine = FaceMap::build(nodes, C, kField, 0.25);
  EXPECT_GT(fine.theorem1_link_fraction(), coarse.theorem1_link_fraction() - 0.02)
      << "n=" << n << " C=" << C;
  EXPECT_GT(fine.theorem1_link_fraction(), 0.5)
      << "n=" << n << " C=" << C << " faces=" << fine.face_count();
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem1Property,
                         ::testing::Values(Theorem1Params{4, 1.2, 21},
                                           Theorem1Params{6, 1.2, 22},
                                           Theorem1Params{6, 1.5, 23},
                                           Theorem1Params{9, 1.3, 24}));

// ---------------------------------------------------------------------------
// Property: Lemma 1 (uniqueness) — cells mapped to a face carry exactly
// that face's signature, for every face in the map.
// ---------------------------------------------------------------------------

class Lemma1Property : public ::testing::TestWithParam<double> {};

TEST_P(Lemma1Property, CellSignatureMatchesItsFace) {
  const double C = GetParam();
  RngStream rng(31);
  const Deployment nodes = random_deployment(kField, 6, rng);
  const FaceMap map = FaceMap::build(nodes, C, kField, 1.0);
  const UniformGrid& grid = map.grid();
  for (std::size_t flat = 0; flat < grid.cell_count(); flat += 7) {
    const Vec2 center = grid.center(flat);
    const FaceId id = map.face_at(center);
    EXPECT_EQ(map.face(id).signature, signature_at(center, nodes, C));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma1Property, ::testing::Values(1.0, 1.1, 1.3, 1.7));

// ---------------------------------------------------------------------------
// Property: the heuristic matcher is consistent with the exhaustive one —
// started at the exhaustive optimum it stays there (the optimum is a
// local maximum of the similarity landscape).
// ---------------------------------------------------------------------------

class MatcherConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherConsistency, ExhaustiveOptimumIsHeuristicFixedPoint) {
  RngStream rng(GetParam());
  const Deployment nodes = random_deployment(kField, 6, rng);
  const FaceMap map = FaceMap::build(nodes, 1.25, kField, 1.0);
  const ExhaustiveMatcher exhaustive;
  const HeuristicMatcher heuristic;
  for (int trial = 0; trial < 25; ++trial) {
    SamplingVector vd;
    vd.value.reserve(map.dimension());
    vd.known.assign(map.dimension(), true);
    for (std::size_t c = 0; c < map.dimension(); ++c)
      vd.value.push_back(static_cast<double>(
          static_cast<int>(rng.uniform_index(3)) - 1));
    const MatchResult best = exhaustive.match(map, vd);
    const MatchResult climbed = heuristic.match(map, vd, best.face);
    EXPECT_DOUBLE_EQ(climbed.similarity, best.similarity);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatcherConsistency,
                         ::testing::Values(41u, 42u, 43u, 44u));

// ---------------------------------------------------------------------------
// Property: sampling vector dimension is always C(n,2) and values bounded,
// under random fault patterns.
// ---------------------------------------------------------------------------

class VectorShape : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VectorShape, DimensionAndBoundsUnderFaults) {
  const std::size_t n = GetParam();
  RngStream rng(100 + n);
  const Deployment nodes = random_deployment(kField, n, rng);
  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  cfg.sensing_range = 40.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 5;
  const BernoulliDropout faults(0.4, RngStream(9));
  for (std::uint64_t e = 0; e < 10; ++e) {
    const Vec2 target{rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)};
    const GroupingSampling group = collect_group(
        nodes, cfg, faults, e, 0.0, [&](double) { return target; }, rng.substream(e));
    for (VectorMode mode : {VectorMode::kBasic, VectorMode::kExtended}) {
      const SamplingVector vd = build_sampling_vector(group, 1.0, mode);
      EXPECT_EQ(vd.dimension(), pair_count(n));
      for (std::size_t c = 0; c < vd.dimension(); ++c) {
        EXPECT_GE(vd.value[c], -1.0);
        EXPECT_LE(vd.value[c], 1.0);
        if (mode == VectorMode::kBasic && vd.known[c])
          EXPECT_TRUE(vd.value[c] == -1.0 || vd.value[c] == 0.0 || vd.value[c] == 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VectorShape, ::testing::Values(2u, 3u, 5u, 8u, 12u, 20u));

}  // namespace
}  // namespace fttt
