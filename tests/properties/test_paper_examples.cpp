// Worked examples transcribed from the paper, driven through the public
// API end to end (Sec. 4.4(3) fault example, Fig. 7 localization).
#include <gtest/gtest.h>

#include <cmath>

#include "core/similarity.hpp"

namespace fttt {
namespace {

SamplingVector make_vd(std::vector<double> v, std::vector<bool> known = {}) {
  SamplingVector vd;
  if (known.empty()) known.assign(v.size(), true);
  vd.known = std::move(known);
  vd.value = std::move(v);
  return vd;
}

/// The reconstructed signature set of the paper's Fig. 7(a) running
/// example (f1..f6 pinned by the Sec. 6 similarity values, f8 given
/// explicitly in Sec. 4.4(3)).
struct PaperFaces {
  SignatureVector f1{1, 1, 1, 1, 1, -1};
  SignatureVector f2{1, 1, 1, 1, 1, 0};
  SignatureVector f3{-1, 1, 1, 1, 1, 0};
  SignatureVector f4{0, 1, 1, 1, 1, 0};
  SignatureVector f5{1, 1, 1, 1, 0, 0};
  SignatureVector f6{-1, 1, 1, 1, 0, 0};
  SignatureVector f8{1, 1, 1, 0, 0, 0};

  std::vector<const SignatureVector*> all() const {
    return {&f1, &f2, &f3, &f4, &f5, &f6, &f8};
  }
};

TEST(PaperExamples, Fig7DirectMatchLandsInF3) {
  // "the sampling vector [-1,1,1,1,1,0] ... the signature of f3 is also
  // [-1,1,1,1,1,0]. Hence, the target is localized in face f3."
  const PaperFaces faces;
  const SamplingVector vd = make_vd({-1.0, 1.0, 1.0, 1.0, 1.0, 0.0});
  EXPECT_TRUE(std::isinf(similarity(vd, faces.f3)));
  for (const auto* f : faces.all())
    if (f != &faces.f3) EXPECT_FALSE(std::isinf(similarity(vd, *f)));
}

TEST(PaperExamples, Fig7MaximumLikelihoodPicksF3) {
  // "if the sampling vector appears to be [-1,1,1,1,1,1], there is no
  // face whose signature directly matches ... the similarity between the
  // sampling vector and the signature vector of f3 is 1, which is the
  // maximum."
  const PaperFaces faces;
  const SamplingVector vd = make_vd({-1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(similarity(vd, faces.f3), 1.0);
  for (const auto* f : faces.all())
    if (f != &faces.f3) EXPECT_LT(similarity(vd, *f), 1.0);
}

TEST(PaperExamples, Sec443FaultVectorPrefersF8) {
  // The fault-tolerant vector [1,1,1,-1,*,1] must select f8 =
  // [1,1,1,0,0,0] among the paper faces. (The paper prints S = 1/2; with
  // Def. 7/Eq. 7 applied literally the value is 1/sqrt(2) — the ranking,
  // which is what the strategy uses, is unchanged. See EXPERIMENTS.md.)
  const PaperFaces faces;
  const SamplingVector vd =
      make_vd({1.0, 1.0, 1.0, -1.0, 0.0, 1.0}, {true, true, true, true, false, true});
  const double s8 = similarity(vd, faces.f8);
  EXPECT_NEAR(s8, 1.0 / std::sqrt(2.0), 1e-12);
  for (const auto* f : faces.all())
    if (f != &faces.f8) EXPECT_LT(similarity(vd, *f), s8);
}

TEST(PaperExamples, BasicTieExtendedBreaksIt) {
  // Sec. 6: basic [0,1,1,1,1,-1] ties f1/f4 at S = 1; the extended
  // [1/3,1,1,1,1,-1] leaves f1 uniquely on top with S = 1.5.
  const PaperFaces faces;
  const SamplingVector basic = make_vd({0.0, 1.0, 1.0, 1.0, 1.0, -1.0});
  EXPECT_DOUBLE_EQ(similarity(basic, faces.f1), 1.0);
  EXPECT_DOUBLE_EQ(similarity(basic, faces.f4), 1.0);

  const SamplingVector ext = make_vd({1.0 / 3.0, 1.0, 1.0, 1.0, 1.0, -1.0});
  EXPECT_NEAR(similarity(ext, faces.f1), 1.5, 1e-12);
  double second_best = 0.0;
  for (const auto* f : faces.all())
    if (f != &faces.f1) second_best = std::max(second_best, similarity(ext, *f));
  EXPECT_LT(second_best, 1.5);
}

}  // namespace
}  // namespace fttt
