// Pipeline fuzzing: random-but-valid scenario configurations driven
// end-to-end through run_tracking. Asserts the global invariants every
// configuration must uphold — finite in-field estimates, aligned series,
// reproducibility — over a parameterized seed sweep.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "sim/runner.hpp"

namespace fttt {
namespace {

ScenarioConfig random_config(RngStream& rng) {
  ScenarioConfig cfg;
  const double side = rng.uniform(40.0, 150.0);
  cfg.field = Aabb{{0.0, 0.0}, {side, side}};
  cfg.sensor_count = 4 + rng.uniform_index(20);
  cfg.deployment = rng.bernoulli(0.5) ? DeploymentKind::kRandom : DeploymentKind::kGrid;
  cfg.sensing_range = rng.uniform(20.0, side * 1.2);
  cfg.eps = rng.uniform(0.25, 3.0);
  cfg.model.beta = rng.uniform(2.0, 4.5);
  cfg.model.sigma = rng.uniform(0.0, 8.0);
  cfg.channel = rng.bernoulli(0.5) ? Channel::kBounded : Channel::kGaussian;
  cfg.samples_per_group = 1 + rng.uniform_index(9);
  cfg.dropout_probability = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.5) : 0.0;
  cfg.missing = rng.bernoulli(0.5) ? MissingPolicy::kMissingReadsSmaller
                                   : MissingPolicy::kMissingUnknown;
  cfg.calibrate_C = rng.bernoulli(0.5);
  cfg.freeze_group = rng.bernoulli(0.8);
  const std::array<TraceKind, 3> traces{TraceKind::kRandomWaypoint, TraceKind::kUShape,
                                        TraceKind::kGaussMarkov};
  cfg.trace = traces[rng.uniform_index(3)];
  cfg.v_min = rng.uniform(0.5, 2.0);
  cfg.v_max = cfg.v_min + rng.uniform(0.0, 4.0);
  cfg.duration = 6.0;
  cfg.grid_cell = rng.uniform(1.5, 4.0);
  cfg.seed = rng.next_u64();
  return cfg;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, InvariantsHoldForRandomConfigurations) {
  RngStream rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    const ScenarioConfig cfg = random_config(rng);
    const std::array<Method, 4> methods{Method::kFttt, Method::kFtttExtended,
                                        Method::kPathMatching, Method::kDirectMle};
    const TrackingResult run = run_tracking(cfg, methods);

    SCOPED_TRACE("round " + std::to_string(round) + " n=" +
                 std::to_string(cfg.sensor_count));
    ASSERT_FALSE(run.times.empty());
    ASSERT_EQ(run.true_positions.size(), run.times.size());
    for (const Vec2 p : run.true_positions) EXPECT_TRUE(cfg.field.contains(p));
    for (const auto& m : run.methods) {
      ASSERT_EQ(m.estimates.size(), run.times.size());
      ASSERT_EQ(m.errors.size(), run.times.size());
      for (std::size_t i = 0; i < m.errors.size(); ++i) {
        EXPECT_TRUE(std::isfinite(m.errors[i]));
        EXPECT_GE(m.errors[i], 0.0);
        EXPECT_TRUE(std::isfinite(m.estimates[i].x));
        EXPECT_TRUE(std::isfinite(m.estimates[i].y));
        // Estimates are face centroids; the grid's last row/column may
        // overhang the field by up to one cell (documented in
        // UniformGrid), so allow exactly that slack.
        const Aabb inflated{cfg.field.lo,
                            cfg.field.hi + Vec2{cfg.grid_cell, cfg.grid_cell}};
        EXPECT_TRUE(inflated.contains(m.estimates[i]))
            << "estimate " << m.estimates[i];
      }
    }

    // Reproducibility of the exact same configuration.
    const TrackingResult again = run_tracking(cfg, methods);
    for (std::size_t m = 0; m < methods.size(); ++m)
      for (std::size_t i = 0; i < run.methods[m].errors.size(); ++i)
        ASSERT_DOUBLE_EQ(run.methods[m].errors[i], again.methods[m].errors[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace fttt
