// TrackManagerFleet contract suite: shard-count invariance against the
// SerialReplay executable spec, deployment churn with tracks held,
// ingestion-policy accounting, and the coverage gate. The determinism
// cases are the serve layer's core claim — batch composition and shard
// fan-out can never change an estimate.
#include "serve/fleet.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <vector>

#include "core/facemap_cache.hpp"
#include "net/deployment.hpp"
#include "serve/workload.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {60.0, 60.0}};
constexpr double kC = 1.2;
constexpr double kCell = 2.0;

Deployment roster9() { return grid_deployment(kField, 9); }

SyntheticWorkload::Config workload_config(std::size_t tracks) {
  SyntheticWorkload::Config cfg;
  cfg.tracks = tracks;
  cfg.sampling.model =
      PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 0.5, .d0 = 1.0};
  cfg.sampling.sensing_range = 90.0;  // whole field: every node reports
  cfg.sampling.samples_per_group = 3;
  return cfg;
}

/// Tick-major stream: one frame per track per tick, track order.
std::vector<std::vector<ReportFrame>> make_stream(const SyntheticWorkload& workload,
                                                  std::size_t tracks,
                                                  std::size_t ticks) {
  std::vector<std::vector<ReportFrame>> stream(ticks);
  for (std::uint64_t tick = 0; tick < ticks; ++tick)
    for (TrackId t = 0; t < tracks; ++t)
      stream[tick].push_back(workload.frame(t, tick));
  return stream;
}

void expect_identical(const TrackUpdate& got, const TrackUpdate& want,
                      std::size_t i) {
  EXPECT_EQ(got.track, want.track) << "update " << i;
  EXPECT_EQ(got.epoch, want.epoch) << "update " << i;
  EXPECT_EQ(got.warm, want.warm) << "update " << i;
  ASSERT_EQ(got.estimate.has_value(), want.estimate.has_value()) << "update " << i;
  if (!want.estimate) return;
  EXPECT_EQ(got.estimate->position.x, want.estimate->position.x) << "update " << i;
  EXPECT_EQ(got.estimate->position.y, want.estimate->position.y) << "update " << i;
  EXPECT_EQ(got.estimate->face, want.estimate->face) << "update " << i;
  EXPECT_EQ(got.estimate->similarity, want.estimate->similarity) << "update " << i;
}

TEST(Fleet, ConstructorValidation) {
  TrackManagerFleet::Config cfg;
  cfg.shards = 0;
  EXPECT_THROW(TrackManagerFleet(roster9(), kC, kField, kCell, cfg),
               std::invalid_argument);
  cfg.shards = 1;
  cfg.queue_capacity = 0;
  EXPECT_THROW(TrackManagerFleet(roster9(), kC, kField, kCell, cfg),
               std::invalid_argument);
  cfg.queue_capacity = 16;
  Deployment lone;
  lone.push_back(SensorNode{0, {1.0, 1.0}});
  EXPECT_THROW(TrackManagerFleet(lone, kC, kField, kCell, cfg),
               std::invalid_argument);
}

TEST(Workload, FramesArePureFunctionsOfSeedTrackEpoch) {
  const Deployment roster = roster9();
  const SyntheticWorkload a(roster, kField, workload_config(8), 11);
  const SyntheticWorkload b(roster, kField, workload_config(8), 11);

  // Query b in reverse order, a forward: results must not depend on
  // call history, only on (seed, track, epoch).
  std::vector<ReportFrame> from_b;
  for (int t = 7; t >= 0; --t)
    for (int e = 3; e >= 0; --e)
      from_b.push_back(b.frame(static_cast<TrackId>(t),
                               static_cast<std::uint64_t>(e)));
  for (std::size_t t = 0; t < 8; ++t)
    for (std::uint64_t e = 0; e < 4; ++e) {
      const ReportFrame& want = from_b[(7 - t) * 4 + (3 - e)];
      const ReportFrame got = a.frame(static_cast<TrackId>(t), e);
      ASSERT_EQ(got.group.node_count(), want.group.node_count());
      for (std::size_t n = 0; n < got.group.node_count(); ++n)
        ASSERT_EQ(got.group.has(n), want.group.has(n));
      const auto ga = got.group.raw();
      const auto gb = want.group.raw();
      ASSERT_EQ(ga.size(), gb.size());
      for (std::size_t s = 0; s < ga.size(); ++s) ASSERT_EQ(ga[s], gb[s]);
      EXPECT_EQ(a.target_at(got.track, got.epoch).x,
                b.target_at(want.track, want.epoch).x);
    }
}

TEST(Workload, ConfigValidation) {
  EXPECT_THROW(SyntheticWorkload(roster9(), kField, workload_config(0), 1),
               std::invalid_argument);
  auto bad = workload_config(4);
  bad.drop_probability = 1.0;  // certain dropout can never localize
  EXPECT_THROW(SyntheticWorkload(roster9(), kField, bad, 1),
               std::invalid_argument);
}

TEST(Fleet, ShardCountInvarianceAgainstSerialReplay) {
  const Deployment roster = roster9();
  constexpr std::size_t kTracks = 12;
  constexpr std::size_t kTicks = 6;
  const SyntheticWorkload workload(roster, kField, workload_config(kTracks), 5);
  const auto stream = make_stream(workload, kTracks, kTicks);

  TrackManagerFleet::Config cfg;
  FaceMapCache cache;

  // The spec: one shard, one frame at a time, same initial division.
  const FaceMapCache::Entry entry =
      cache.get_or_build(roster, kC, kField, kCell, ThreadPool::global());
  std::vector<NodeId> members(roster.size());
  for (std::size_t i = 0; i < roster.size(); ++i)
    members[i] = static_cast<NodeId>(i);
  SerialReplay replay(cfg.track, entry.map, entry.table, members);
  std::vector<TrackUpdate> spec;
  for (const auto& tick_frames : stream)
    for (const ReportFrame& frame : tick_frames)
      spec.push_back(replay.process(frame));
  ASSERT_EQ(replay.track_count(), kTracks);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    cfg.shards = shards;
    TrackManagerFleet fleet(roster, kC, kField, kCell, cfg, ThreadPool::global(),
                            &cache);
    std::vector<TrackUpdate> got;
    for (const auto& tick_frames : stream) {
      for (const ReportFrame& frame : tick_frames)
        ASSERT_TRUE(fleet.submit(frame));
      for (TrackUpdate& u : fleet.tick()) got.push_back(std::move(u));
    }
    ASSERT_EQ(got.size(), spec.size()) << shards << " shards";
    for (std::size_t i = 0; i < spec.size(); ++i)
      expect_identical(got[i], spec[i], i);
    const auto stats = fleet.stats();
    EXPECT_EQ(stats.tracks, kTracks) << shards << " shards";
    EXPECT_EQ(stats.frames, kTracks * kTicks);
    EXPECT_EQ(stats.enqueued, kTracks * kTicks);
    EXPECT_EQ(stats.shed, 0u);
  }
}

TEST(Fleet, ChurnMatchesReplayWithTracksHeld) {
  const Deployment roster = roster9();
  constexpr std::size_t kTracks = 8;
  constexpr std::size_t kTicks = 6;
  const SyntheticWorkload workload(roster, kField, workload_config(kTracks), 9);
  const auto stream = make_stream(workload, kTracks, kTicks);

  TrackManagerFleet::Config cfg;
  cfg.shards = 2;
  TrackManagerFleet fleet(roster, kC, kField, kCell, cfg);
  SerialReplay replay(cfg.track, fleet.map(), fleet.table(), fleet.members());

  for (std::uint64_t tick = 0; tick < kTicks; ++tick) {
    // Fail node 0 before tick 2, revive it before tick 4; the rebuild
    // runs off-thread, so flush before mirroring the division into the
    // replay at the same stream position.
    if (tick == 2) {
      ASSERT_TRUE(fleet.fail_node(0));
      fleet.flush_rebuilds();
      replay.adopt_division(fleet.map(), fleet.table(), fleet.members());
    }
    if (tick == 4) {
      ASSERT_TRUE(fleet.revive_node(0));
      fleet.flush_rebuilds();
      replay.adopt_division(fleet.map(), fleet.table(), fleet.members());
    }
    std::vector<TrackUpdate> spec;
    for (const ReportFrame& frame : stream[tick]) {
      spec.push_back(replay.process(frame));
      ASSERT_TRUE(fleet.submit(frame));
    }
    const std::vector<TrackUpdate> got = fleet.tick();
    ASSERT_EQ(got.size(), spec.size()) << "tick " << tick;
    for (std::size_t i = 0; i < spec.size(); ++i)
      expect_identical(got[i], spec[i], i);
  }

  const auto stats = fleet.stats();
  EXPECT_EQ(stats.tracks, kTracks);  // zero dropped tracks through churn
  EXPECT_EQ(stats.rebuilds, 2u);
  EXPECT_EQ(stats.churn_events, 2u);
  EXPECT_EQ(fleet.alive_count(), roster.size());
}

TEST(Fleet, ChurnRefusalRules) {
  Deployment three;
  three.push_back(SensorNode{0, {5.0, 5.0}});
  three.push_back(SensorNode{1, {55.0, 5.0}});
  three.push_back(SensorNode{2, {30.0, 55.0}});
  TrackManagerFleet fleet(three, kC, kField, kCell, {});

  EXPECT_FALSE(fleet.fail_node(99));   // unknown id
  EXPECT_FALSE(fleet.revive_node(0));  // already alive
  EXPECT_TRUE(fleet.fail_node(0));
  EXPECT_FALSE(fleet.fail_node(0));    // already failed
  EXPECT_FALSE(fleet.fail_node(1));    // would leave < 2 alive
  EXPECT_EQ(fleet.alive_count(), 2u);  // refusal/alive answers are instant
  EXPECT_TRUE(fleet.revive_node(0));
  EXPECT_EQ(fleet.alive_count(), 3u);
  EXPECT_EQ(fleet.stats().churn_events, 2u);
  fleet.flush_rebuilds();  // every accepted event got its own rebuild
  EXPECT_EQ(fleet.stats().rebuilds, 2u);
}

TEST(Fleet, ShedAccountingReconciles) {
  const Deployment roster = roster9();
  constexpr std::size_t kTracks = 10;
  const SyntheticWorkload workload(roster, kField, workload_config(kTracks), 3);

  TrackManagerFleet::Config cfg;
  cfg.queue_capacity = 4;
  TrackManagerFleet fleet(roster, kC, kField, kCell, cfg);
  for (TrackId t = 0; t < kTracks; ++t)
    ASSERT_TRUE(fleet.submit(workload.frame(t, 0)));  // shed-oldest admits all

  auto stats = fleet.stats();
  EXPECT_EQ(stats.enqueued, kTracks);
  EXPECT_EQ(stats.shed, kTracks - cfg.queue_capacity);
  EXPECT_EQ(stats.queue_depth, cfg.queue_capacity);

  const std::vector<TrackUpdate> updates = fleet.tick();
  ASSERT_EQ(updates.size(), cfg.queue_capacity);
  for (std::size_t i = 0; i < updates.size(); ++i)
    EXPECT_EQ(updates[i].track, kTracks - cfg.queue_capacity + i);  // newest won

  stats = fleet.stats();
  EXPECT_EQ(stats.enqueued - stats.shed, stats.frames);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(Fleet, TrySubmitRejectsWhenFull) {
  const Deployment roster = roster9();
  const SyntheticWorkload workload(roster, kField, workload_config(4), 3);
  TrackManagerFleet::Config cfg;
  cfg.queue_capacity = 2;
  TrackManagerFleet fleet(roster, kC, kField, kCell, cfg);
  EXPECT_TRUE(fleet.try_submit(workload.frame(0, 0)));
  EXPECT_TRUE(fleet.try_submit(workload.frame(1, 0)));
  EXPECT_FALSE(fleet.try_submit(workload.frame(2, 0)));  // full: kept out
  const auto stats = fleet.stats();
  EXPECT_EQ(stats.enqueued, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(Fleet, CloseRejectsSubmitsButResolvesQueuedFrames) {
  const Deployment roster = roster9();
  const SyntheticWorkload workload(roster, kField, workload_config(4), 3);
  TrackManagerFleet fleet(roster, kC, kField, kCell, {});
  ASSERT_TRUE(fleet.submit(workload.frame(0, 0)));
  ASSERT_TRUE(fleet.submit(workload.frame(1, 0)));
  fleet.close();
  EXPECT_FALSE(fleet.submit(workload.frame(2, 0)));
  EXPECT_FALSE(fleet.try_submit(workload.frame(2, 0)));
  EXPECT_FALSE(fleet.submit_wait(workload.frame(2, 0)));
  EXPECT_EQ(fleet.tick().size(), 2u);  // accepted work outlives close()
}

TEST(Fleet, CoverageGateEmitsNoEstimate) {
  const Deployment roster = roster9();
  TrackManagerFleet fleet(roster, kC, kField, kCell, {});

  ReportFrame thin;
  thin.track = 42;
  thin.epoch = 0;
  thin.group.resize(roster.size(), 3);
  thin.group.set_column(1);  // one reporter < min_reporting
  ASSERT_TRUE(fleet.submit(thin));

  const std::vector<TrackUpdate> updates = fleet.tick();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].track, 42u);
  EXPECT_FALSE(updates[0].estimate.has_value());
  EXPECT_FALSE(updates[0].warm);
  const auto stats = fleet.stats();
  EXPECT_EQ(stats.frames, 1u);
  EXPECT_EQ(stats.localizations, 0u);
  EXPECT_EQ(stats.tracks, 1u);  // the gated track still holds a slot
}

TEST(Fleet, HierarchicalFleetMatchesFlatReplayUnderChurn) {
  // The strongest cross-mode claim: a hierarchical fleet's updates are
  // bit-identical to a *flat* serial replay of the same stream under the
  // same division schedule — the descent can never change an estimate,
  // even across churn-induced tier rebuilds.
  const Deployment roster = roster9();
  constexpr std::size_t kTracks = 8;
  constexpr std::size_t kTicks = 6;
  const SyntheticWorkload workload(roster, kField, workload_config(kTracks), 21);
  const auto stream = make_stream(workload, kTracks, kTicks);

  TrackManagerFleet::Config cfg;
  cfg.shards = 2;
  cfg.track.hierarchical = true;
  TrackManagerFleet fleet(roster, kC, kField, kCell, cfg);
  ASSERT_NE(fleet.hier(), nullptr);
  ASSERT_NE(fleet.index(), nullptr);

  TrackShard::Config flat = cfg.track;
  flat.hierarchical = false;
  SerialReplay replay(flat, fleet.map(), fleet.table(), fleet.members());

  for (std::uint64_t tick = 0; tick < kTicks; ++tick) {
    if (tick == 2) {
      ASSERT_TRUE(fleet.fail_node(0));
      fleet.flush_rebuilds();
      replay.adopt_division(fleet.map(), fleet.table(), fleet.members());
    }
    if (tick == 4) {
      ASSERT_TRUE(fleet.revive_node(0));
      fleet.flush_rebuilds();
      replay.adopt_division(fleet.map(), fleet.table(), fleet.members());
    }
    std::vector<TrackUpdate> spec;
    for (const ReportFrame& frame : stream[tick]) {
      spec.push_back(replay.process(frame));
      ASSERT_TRUE(fleet.submit(frame));
    }
    const std::vector<TrackUpdate> got = fleet.tick();
    ASSERT_EQ(got.size(), spec.size()) << "tick " << tick;
    for (std::size_t i = 0; i < spec.size(); ++i)
      expect_identical(got[i], spec[i], i);
  }
  EXPECT_EQ(fleet.stats().rebuilds, 2u);
}

TEST(Fleet, ReplaySharesTheFleetsTier) {
  const Deployment roster = roster9();
  TrackManagerFleet::Config cfg;
  cfg.track.hierarchical = true;
  TrackManagerFleet fleet(roster, kC, kField, kCell, cfg);
  // Handing the fleet's tier to a hierarchical replay skips a rebuild;
  // results stay identical (tier determinism).
  SerialReplay own(cfg.track, fleet.map(), fleet.table(), fleet.members());
  SerialReplay shared(cfg.track, fleet.map(), fleet.table(), fleet.members());
  shared.adopt_division(fleet.map(), fleet.table(), fleet.members(),
                        fleet.hier(), fleet.index());
  const SyntheticWorkload workload(roster, kField, workload_config(4), 33);
  for (std::uint64_t e = 0; e < 4; ++e)
    for (TrackId t = 0; t < 4; ++t) {
      const ReportFrame frame = workload.frame(t, e);
      expect_identical(shared.process(frame), own.process(frame), t);
    }
}

TEST(Fleet, AsyncRebuildServesOldDivisionUntilReady) {
  // The double-buffer claim: while a rebuild is in flight, ticks keep
  // resolving against the division served before the churn event — no
  // stall, no half-adopted state. A one-worker pool whose worker is
  // pinned by a blocker task keeps the rebuild provably un-started;
  // ticks still run (parallel_for callers claim chunks themselves).
  const Deployment roster = roster9();
  constexpr std::size_t kTracks = 6;
  const SyntheticWorkload workload(roster, kField, workload_config(kTracks), 17);

  ThreadPool pool(1);
  TrackManagerFleet::Config cfg;
  TrackManagerFleet fleet(roster, kC, kField, kCell, cfg, pool);
  SerialReplay replay(cfg.track, fleet.map(), fleet.table(), fleet.members());
  const FaceMap* old_division = fleet.map().get();

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  ASSERT_TRUE(pool.submit([gate] { gate.wait(); }));

  ASSERT_TRUE(fleet.fail_node(0));  // rebuild queued behind the blocker
  std::vector<TrackUpdate> spec;
  for (TrackId t = 0; t < kTracks; ++t) {
    const ReportFrame frame = workload.frame(t, 0);
    spec.push_back(replay.process(frame));  // replay still on old division
    ASSERT_TRUE(fleet.submit(frame));
  }
  const std::vector<TrackUpdate> got = fleet.tick();
  EXPECT_EQ(fleet.map().get(), old_division);  // still serving the old one
  ASSERT_EQ(got.size(), spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i)
    expect_identical(got[i], spec[i], i);

  release.set_value();
  fleet.flush_rebuilds();
  EXPECT_NE(fleet.map().get(), old_division);
  EXPECT_EQ(fleet.stats().rebuilds, 1u);

  // And the adopted division matches a replay that adopts it too.
  replay.adopt_division(fleet.map(), fleet.table(), fleet.members());
  spec.clear();
  std::vector<TrackUpdate> got2;
  for (TrackId t = 0; t < kTracks; ++t) {
    const ReportFrame frame = workload.frame(t, 1);
    spec.push_back(replay.process(frame));
    ASSERT_TRUE(fleet.submit(frame));
  }
  for (TrackUpdate& u : fleet.tick()) got2.push_back(std::move(u));
  ASSERT_EQ(got2.size(), spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i)
    expect_identical(got2[i], spec[i], i);
  EXPECT_EQ(fleet.stats().tracks, kTracks);  // zero dropped tracks
}

TEST(Fleet, SyncModeAdoptsImmediately) {
  const Deployment roster = roster9();
  TrackManagerFleet::Config cfg;
  cfg.async_rebuild = false;
  TrackManagerFleet fleet(roster, kC, kField, kCell, cfg);
  const FaceMap* before = fleet.map().get();
  ASSERT_TRUE(fleet.fail_node(0));
  EXPECT_NE(fleet.map().get(), before);  // adopted inside the call
  EXPECT_EQ(fleet.stats().rebuilds, 1u);
  EXPECT_EQ(fleet.stats().churn_events, 1u);
  fleet.flush_rebuilds();  // no-op in sync mode
  EXPECT_EQ(fleet.stats().rebuilds, 1u);
}

TEST(Fleet, FreeRunningAsyncMatchesMirroredReplay) {
  // No flushes: churn events land between ticks and the fleet adopts
  // whenever a rebuild happens to be ready at a tick boundary. The
  // replay mirrors adoption after the fact — a rebuilds increase during
  // tick() means the division swapped *before* that tick's frames
  // resolved, so the replay adopts and then processes the saved frames.
  const Deployment roster = roster9();
  constexpr std::size_t kTracks = 6;
  constexpr std::size_t kTicks = 10;
  const SyntheticWorkload workload(roster, kField, workload_config(kTracks), 29);
  const auto stream = make_stream(workload, kTracks, kTicks);

  TrackManagerFleet::Config cfg;
  cfg.shards = 2;
  cfg.track.hierarchical = true;
  TrackManagerFleet fleet(roster, kC, kField, kCell, cfg);
  TrackShard::Config flat = cfg.track;
  flat.hierarchical = false;
  SerialReplay replay(flat, fleet.map(), fleet.table(), fleet.members());

  std::uint64_t churned = 0;
  std::uint64_t adopted = 0;
  NodeId churn_node = 0;
  bool fail_next = true;
  for (std::uint64_t tick = 0; tick < kTicks; ++tick) {
    if (tick % 2 == 1) {
      const bool ok = fail_next ? fleet.fail_node(churn_node)
                                : fleet.revive_node(churn_node);
      ASSERT_TRUE(ok);
      if (!fail_next) churn_node = static_cast<NodeId>((churn_node + 1) % 9);
      fail_next = !fail_next;
      ++churned;
    }
    for (const ReportFrame& frame : stream[tick])
      ASSERT_TRUE(fleet.submit(frame));
    const std::vector<TrackUpdate> got = fleet.tick();

    if (fleet.stats().rebuilds > adopted) {
      adopted = fleet.stats().rebuilds;
      replay.adopt_division(fleet.map(), fleet.table(), fleet.members());
    }
    std::vector<TrackUpdate> spec;
    for (const ReportFrame& frame : stream[tick])
      spec.push_back(replay.process(frame));
    ASSERT_EQ(got.size(), spec.size()) << "tick " << tick;
    for (std::size_t i = 0; i < spec.size(); ++i)
      expect_identical(got[i], spec[i], i);
  }
  fleet.flush_rebuilds();
  const auto stats = fleet.stats();
  EXPECT_EQ(stats.churn_events, churned);
  EXPECT_GE(stats.rebuilds, 1u);
  EXPECT_LE(stats.rebuilds, churned);  // coalescing never over-counts
  EXPECT_EQ(stats.tracks, kTracks);    // zero dropped tracks throughout
}

TEST(Fleet, SharedCacheServesOneBuildToSiblingFleets) {
  const Deployment roster = roster9();
  FaceMapCache cache;
  TrackManagerFleet a(roster, kC, kField, kCell, {}, ThreadPool::global(), &cache);
  TrackManagerFleet b(roster, kC, kField, kCell, {}, ThreadPool::global(), &cache);
  EXPECT_EQ(a.map().get(), b.map().get());
  EXPECT_EQ(a.table().get(), b.table().get());
  EXPECT_EQ(cache.stats().misses, 1u);
}

}  // namespace
}  // namespace fttt
