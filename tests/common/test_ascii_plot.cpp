#include "common/ascii_plot.hpp"

#include <gtest/gtest.h>

namespace fttt {
namespace {

TEST(AsciiPlot, EmptyRenderHasBorder) {
  AsciiPlot plot({{0.0, 0.0}, {10.0, 10.0}}, 20, 5);
  const std::string out = plot.render();
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find("x: [0, 10]"), std::string::npos);
}

TEST(AsciiPlot, ScatterMarkAppears) {
  AsciiPlot plot({{0.0, 0.0}, {10.0, 10.0}}, 20, 10);
  plot.scatter({{5.0, 5.0}}, '@');
  EXPECT_NE(plot.render().find('@'), std::string::npos);
}

TEST(AsciiPlot, OutOfExtentPointsClampToBorder) {
  AsciiPlot plot({{0.0, 0.0}, {10.0, 10.0}}, 20, 10);
  plot.scatter({{-100.0, -100.0}, {100.0, 100.0}}, '#');
  EXPECT_NE(plot.render().find('#'), std::string::npos);
}

TEST(AsciiPlot, LaterLayersOverwrite) {
  AsciiPlot plot({{0.0, 0.0}, {10.0, 10.0}}, 20, 10);
  plot.scatter({{5.0, 5.0}}, 'a');
  plot.scatter({{5.0, 5.0}}, 'b');
  const std::string out = plot.render();
  EXPECT_EQ(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiPlot, PolylineDrawsContinuousTrail) {
  AsciiPlot plot({{0.0, 0.0}, {10.0, 10.0}}, 40, 20);
  plot.polyline({{0.0, 5.0}, {10.0, 5.0}}, '-');
  const std::string out = plot.render();
  // The horizontal line should put many marks, not just two endpoints.
  EXPECT_GT(std::count(out.begin(), out.end(), '-'), 20);
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  const std::vector<std::vector<double>> ys{{0.0, 1.0, 2.0}, {2.0, 1.0, 0.0}};
  const std::string out = ascii_chart(ys, {"up", "down"}, 0.0, 0.5, 30, 10);
  EXPECT_NE(out.find("* = up"), std::string::npos);
  EXPECT_NE(out.find("o = down"), std::string::npos);
  EXPECT_NE(out.find("x: [0, 1]"), std::string::npos);
}

TEST(AsciiChart, HandlesEmptySeries) {
  const std::string out = ascii_chart({}, {}, 0.0, 1.0, 10, 5);
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace fttt
