#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/random.hpp"

namespace fttt {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SampleVariance) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  RunningStats single;
  single.add(5.0);
  EXPECT_DOUBLE_EQ(single.sample_variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RngStream rng(4);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(BatchStats, MeanAndStddev) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of(std::span<const double>{}), 0.0);
}

TEST(BatchStats, Percentile) {
  const std::array<double, 5> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 25.0), 20.0);
  // Interpolation between ranks.
  EXPECT_DOUBLE_EQ(percentile_of(xs, 10.0), 14.0);
}

TEST(BatchStats, Rms) {
  const std::array<double, 2> xs{3.0, 4.0};
  EXPECT_NEAR(rms_of(xs), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(rms_of(std::span<const double>{}), 0.0);
}

TEST(Series, PushAppendsInLockstep) {
  Series s;
  s.label = "test";
  s.push(1.0, 10.0);
  s.push(2.0, 20.0);
  ASSERT_EQ(s.x.size(), 2u);
  ASSERT_EQ(s.y.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x[1], 2.0);
  EXPECT_DOUBLE_EQ(s.y[1], 20.0);
}

}  // namespace
}  // namespace fttt
