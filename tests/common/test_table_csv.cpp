#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace fttt {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  os << t;
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // All data lines equal width (alignment check): header and rows.
  std::istringstream in(out);
  std::string header;
  std::string rule;
  std::string row1;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row1);
  EXPECT_EQ(header.size(), row1.size());
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(PrintBanner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Fig. 11(a)");
  EXPECT_NE(os.str().find("Fig. 11(a)"), std::string::npos);
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "fttt_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_back() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvWriterTest, WritesPlainRows) {
  {
    CsvWriter w(path_);
    w.write_row(std::vector<std::string>{"a", "b", "c"});
    w.write_row(std::vector<double>{1.0, 2.5, -3.0});
  }
  EXPECT_EQ(read_back(), "a,b,c\n1,2.5,-3\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters) {
  {
    CsvWriter w(path_);
    w.write_row(std::vector<std::string>{"has,comma", "has\"quote", "plain"});
  }
  EXPECT_EQ(read_back(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(CsvWriter, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace fttt
