#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/stats.hpp"

namespace fttt {
namespace {

TEST(RngStream, SameSeedSameSequence) {
  RngStream a(42);
  RngStream b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, DifferentSeedsDiffer) {
  RngStream a(1);
  RngStream b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(RngStream, SubstreamIndependentOfParentPosition) {
  // Deriving a substream must depend only on the parent's key, not on how
  // many numbers the parent has already produced.
  RngStream fresh(7);
  RngStream advanced(7);
  for (int i = 0; i < 50; ++i) advanced.next_u64();
  RngStream child_a = fresh.substream(3);
  RngStream child_b = advanced.substream(3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(RngStream, DistinctSubstreamIndicesGiveDistinctStreams) {
  RngStream root(9);
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t i = 0; i < 1000; ++i)
    first_draws.insert(root.substream(i).next_u64());
  EXPECT_EQ(first_draws.size(), 1000u);
}

TEST(RngStream, TwoLevelSubstreamMatchesChained) {
  RngStream root(11);
  RngStream a = root.substream(5, 7);
  RngStream b = root.substream(5).substream(7);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, Uniform01InRange) {
  RngStream rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, Uniform01MeanAndVariance) {
  RngStream rng(77);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform01());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngStream, UniformRange) {
  RngStream rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngStream, UniformIndexBounds) {
  RngStream rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform (expected 1000)
}

TEST(RngStream, UniformIndexOneAlwaysZero) {
  RngStream rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(RngStream, NormalMoments) {
  RngStream rng(99);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.03);
  EXPECT_NEAR(s.stddev(), 3.0, 0.03);
}

TEST(RngStream, NormalTailFractionMatchesGaussian) {
  RngStream rng(1234);
  int beyond_2sigma = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (std::abs(rng.normal(0.0, 1.0)) > 2.0) ++beyond_2sigma;
  // P(|Z| > 2) ~ 4.55 %.
  EXPECT_NEAR(static_cast<double>(beyond_2sigma) / n, 0.0455, 0.004);
}

TEST(RngStream, BernoulliRate) {
  RngStream rng(31);
  int hits = 0;
  for (int i = 0; i < 50000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(RngStream, ShufflePreservesElements) {
  RngStream rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Splitmix64, KnownGoodMixing) {
  // Distinct inputs map to distinct, well-spread outputs.
  EXPECT_NE(splitmix64(0), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 4096; ++i) outs.insert(splitmix64(i));
  EXPECT_EQ(outs.size(), 4096u);
}

}  // namespace
}  // namespace fttt
