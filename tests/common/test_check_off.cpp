// Compiled with FTTT_DISABLE_CONTRACTS (see tests/CMakeLists.txt): proves
// that FTTT_DCHECK compiles out completely — the condition and the detail
// arguments still type-check but are never evaluated — while FTTT_CHECK
// and FTTT_UNREACHABLE stay armed regardless of the toggle.
#define FTTT_DISABLE_CONTRACTS 1

#include "common/check.hpp"

#include <gtest/gtest.h>

static_assert(FTTT_CONTRACTS == 0,
              "this TU must compile with contracts disabled");

namespace fttt {
namespace {

TEST(CheckContractsOff, DcheckDoesNotEvaluateCondition) {
  int evaluations = 0;
  FTTT_DCHECK([&] {
    ++evaluations;
    return false;  // would fire if contracts were on
  }());
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckContractsOff, DcheckDoesNotEvaluateDetailArguments) {
  int detail_evaluations = 0;
  auto detail = [&] {
    ++detail_evaluations;
    return "expensive";
  };
  FTTT_DCHECK(false, detail());
  EXPECT_EQ(detail_evaluations, 0);
}

TEST(CheckContractsOff, CheckStaysArmed) {
  ScopedContractHandler scoped(&throwing_contract_handler);
  EXPECT_THROW(FTTT_CHECK(false, "always-on"), ContractError);
  EXPECT_THROW(FTTT_UNREACHABLE(), ContractError);
}

}  // namespace
}  // namespace fttt
