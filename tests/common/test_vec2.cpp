#include "common/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace fttt {
namespace {

TEST(Vec2, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
  v /= 4.0;
  EXPECT_EQ(v, Vec2(1.0, 1.5));
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ(cross({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(cross({0.0, 1.0}, {1.0, 0.0}), -1.0);
  // Orthogonal vectors have zero dot product.
  EXPECT_DOUBLE_EQ(dot({1.0, 1.0}, {1.0, -1.0}), 0.0);
}

TEST(Vec2, NormsAndDistance) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(norm({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {4.0, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Vec2, NormalizedHandlesZeroVector) {
  EXPECT_EQ(normalized({0.0, 0.0}), Vec2(0.0, 0.0));
  const Vec2 u = normalized({3.0, 4.0});
  EXPECT_NEAR(norm(u), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
}

TEST(Vec2, LerpAndMidpoint) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), Vec2(5.0, 10.0));
  EXPECT_EQ(midpoint(a, b), Vec2(5.0, 10.0));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(Aabb, BasicGeometry) {
  const Aabb box{{0.0, 0.0}, {100.0, 50.0}};
  EXPECT_DOUBLE_EQ(box.width(), 100.0);
  EXPECT_DOUBLE_EQ(box.height(), 50.0);
  EXPECT_DOUBLE_EQ(box.area(), 5000.0);
  EXPECT_EQ(box.center(), Vec2(50.0, 25.0));
}

TEST(Aabb, ContainsBoundaryInclusive) {
  const Aabb box{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_TRUE(box.contains({5.0, 5.0}));
  EXPECT_TRUE(box.contains({0.0, 0.0}));
  EXPECT_TRUE(box.contains({10.0, 10.0}));
  EXPECT_FALSE(box.contains({10.0001, 5.0}));
  EXPECT_FALSE(box.contains({5.0, -0.0001}));
}

TEST(Aabb, ClampProjectsOutsidePoints) {
  const Aabb box{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_EQ(box.clamp({-5.0, 5.0}), Vec2(0.0, 5.0));
  EXPECT_EQ(box.clamp({15.0, 12.0}), Vec2(10.0, 10.0));
  EXPECT_EQ(box.clamp({3.0, 4.0}), Vec2(3.0, 4.0));
}

}  // namespace
}  // namespace fttt
