#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace fttt {
namespace {

TEST(Histogram, ConstructionValidation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinEdges) {
  const Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, SamplesLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(3.9);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(4), 1u);
}

TEST(Histogram, CdfAndQuantile) {
  Histogram h(0.0, 10.0, 10);
  h.add_all({0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5, 9.5});
  EXPECT_DOUBLE_EQ(h.cdf(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, EmptyBehaviour) {
  const Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_FALSE(h.render().empty());
}

TEST(Histogram, RenderShowsBarsAndCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##"), std::string::npos);
  EXPECT_NE(out.find(" 2"), std::string::npos);
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

}  // namespace
}  // namespace fttt
