#include "common/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace fttt {
namespace {

/// Installs the throwing handler for each test so contract fires surface
/// as catchable ContractError instead of aborting the test binary.
class CheckTest : public ::testing::Test {
 protected:
  ScopedContractHandler scoped_{&throwing_contract_handler};
};

TEST_F(CheckTest, PassingCheckIsSilentAndEvaluatesOnce) {
  int evaluations = 0;
  FTTT_CHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(CheckTest, FailingCheckThrowsThroughInstalledHandler) {
  EXPECT_THROW(FTTT_CHECK(1 == 2), ContractError);
}

TEST_F(CheckTest, ViolationCarriesStructuredFields) {
  try {
    const int dim = 7;
    FTTT_CHECK(dim == 10, "dimension mismatch: dim=", dim);
    FAIL() << "check did not fire";
  } catch (const ContractError& e) {
    const ContractViolation& v = e.violation();
    EXPECT_STREQ(v.kind, "FTTT_CHECK");
    EXPECT_STREQ(v.condition, "dim == 10");
    EXPECT_NE(std::string(v.file).find("test_check.cpp"), std::string::npos);
    EXPECT_GT(v.line, 0);
    EXPECT_EQ(v.message, "dimension mismatch: dim=7");
    // what() is the full report: kind, condition, location, message.
    const std::string what = e.what();
    EXPECT_NE(what.find("FTTT_CHECK"), std::string::npos);
    EXPECT_NE(what.find("dim == 10"), std::string::npos);
    EXPECT_NE(what.find("dimension mismatch: dim=7"), std::string::npos);
  }
}

TEST_F(CheckTest, UnreachableAlwaysFires) {
  try {
    FTTT_UNREACHABLE("fell off the routing switch");
    FAIL() << "unreachable did not fire";
  } catch (const ContractError& e) {
    EXPECT_STREQ(e.violation().kind, "FTTT_UNREACHABLE");
    EXPECT_EQ(e.violation().message, "fell off the routing switch");
  }
}

TEST_F(CheckTest, ReportFormatsWithoutConditionForUnreachable) {
  const ContractViolation v{"FTTT_UNREACHABLE", "", "f.cpp", 3, "fn", "m"};
  const std::string s = v.to_string();
  EXPECT_EQ(s.find("condition:"), std::string::npos);
  EXPECT_NE(s.find("f.cpp:3"), std::string::npos);
  EXPECT_NE(s.find("m"), std::string::npos);
}

TEST_F(CheckTest, HandlerInstallReturnsPrevious) {
  // scoped_ already swapped in the throwing handler; a nested swap must
  // return it, and restoring must bring it back.
  ContractHandler prev = set_contract_handler(&throwing_contract_handler);
  EXPECT_EQ(prev, &throwing_contract_handler);
  set_contract_handler(prev);
}

#if FTTT_CONTRACTS

TEST_F(CheckTest, DcheckFiresWhenContractsEnabled) {
  EXPECT_THROW(FTTT_DCHECK(false, "debug invariant"), ContractError);
  try {
    FTTT_DCHECK(2 + 2 == 5);
    FAIL() << "dcheck did not fire";
  } catch (const ContractError& e) {
    EXPECT_STREQ(e.violation().kind, "FTTT_DCHECK");
    EXPECT_STREQ(e.violation().condition, "2 + 2 == 5");
  }
}

#endif  // FTTT_CONTRACTS

TEST_F(CheckTest, DcheckCompiledOutBehavior) {
  // Cross-reference: test_check_off.cpp compiles this same contract with
  // FTTT_CONTRACTS forced to 0 and asserts the condition is never
  // evaluated; here we only pin the enabled-mode single evaluation.
  int evaluations = 0;
  FTTT_DCHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, FTTT_CONTRACTS ? 1 : 0);
}

}  // namespace
}  // namespace fttt
