#include <gtest/gtest.h>

#include <cmath>

#include "mobility/path_trace.hpp"
#include "mobility/waypoint.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {100.0, 100.0}};

TEST(RandomWaypoint, StaysInsideField) {
  const RandomWaypoint rw(WaypointConfig{kField, 1.0, 5.0, 0.0, 60.0}, RngStream(1));
  for (double t = 0.0; t <= 60.0; t += 0.1)
    EXPECT_TRUE(kField.contains(rw.position_at(t))) << "t=" << t;
}

TEST(RandomWaypoint, SpeedWithinConfiguredRange) {
  const RandomWaypoint rw(WaypointConfig{kField, 1.0, 5.0, 0.0, 60.0}, RngStream(2));
  const double dt = 0.01;
  for (double t = 0.0; t < 59.0; t += 0.25) {
    const double v = distance(rw.position_at(t), rw.position_at(t + dt)) / dt;
    EXPECT_LE(v, 5.0 + 1e-6) << "t=" << t;
  }
}

TEST(RandomWaypoint, ContinuousPath) {
  const RandomWaypoint rw(WaypointConfig{kField, 1.0, 5.0, 0.0, 60.0}, RngStream(3));
  for (double t = 0.0; t < 59.9; t += 0.05) {
    const double step = distance(rw.position_at(t), rw.position_at(t + 0.05));
    EXPECT_LE(step, 5.0 * 0.05 + 1e-9);
  }
}

TEST(RandomWaypoint, PauseHoldsPosition) {
  const RandomWaypoint rw(WaypointConfig{kField, 4.9, 5.0, 10.0, 120.0}, RngStream(4));
  // With a 10 s pause, some sampled instants must show zero velocity.
  int still = 0;
  for (double t = 0.0; t < 119.0; t += 0.5)
    if (distance(rw.position_at(t), rw.position_at(t + 0.2)) < 1e-12) ++still;
  EXPECT_GT(still, 5);
}

TEST(RandomWaypoint, ReproducibleFromSeed) {
  const WaypointConfig cfg{kField, 1.0, 5.0, 0.0, 60.0};
  const RandomWaypoint a(cfg, RngStream(9));
  const RandomWaypoint b(cfg, RngStream(9));
  for (double t = 0.0; t <= 60.0; t += 1.0)
    EXPECT_EQ(a.position_at(t), b.position_at(t));
}

TEST(RandomWaypoint, QueriesPastDurationHoldFinalPosition) {
  const RandomWaypoint rw(WaypointConfig{kField, 1.0, 5.0, 0.0, 30.0}, RngStream(5));
  EXPECT_EQ(rw.position_at(30.0), rw.position_at(1000.0));
}

TEST(RandomWaypoint, InvalidConfigThrows) {
  EXPECT_THROW(RandomWaypoint(WaypointConfig{kField, 0.0, 5.0, 0.0, 60.0}, RngStream(1)),
               std::invalid_argument);
  EXPECT_THROW(RandomWaypoint(WaypointConfig{kField, 5.0, 1.0, 0.0, 60.0}, RngStream(1)),
               std::invalid_argument);
  EXPECT_THROW(RandomWaypoint(WaypointConfig{kField, 1.0, 5.0, 0.0, -1.0}, RngStream(1)),
               std::invalid_argument);
}

TEST(PathTrace, ConstantSpeedArrivesOnTime) {
  const Polyline line({{0.0, 0.0}, {30.0, 0.0}});
  const PathTrace trace(line, 3.0, 3.0, RngStream(1));
  EXPECT_DOUBLE_EQ(trace.duration(), 10.0);
  EXPECT_EQ(trace.position_at(0.0), Vec2(0.0, 0.0));
  EXPECT_EQ(trace.position_at(5.0), Vec2(15.0, 0.0));
  EXPECT_EQ(trace.position_at(10.0), Vec2(30.0, 0.0));
  EXPECT_EQ(trace.position_at(99.0), Vec2(30.0, 0.0));
}

TEST(PathTrace, VariableSpeedStaysOnPath) {
  const Aabb box{{0.0, 0.0}, {100.0, 100.0}};
  const Polyline path = u_shape_path(box, 15.0);
  const PathTrace trace(path, 1.0, 5.0, RngStream(7));
  for (double t = 0.0; t < trace.duration(); t += 0.25) {
    const Vec2 p = trace.position_at(t);
    // Every point of the "⊔" lies on x = 15, x = 85 or y = 15.
    const bool on_path = std::abs(p.x - 15.0) < 1e-9 || std::abs(p.x - 85.0) < 1e-9 ||
                         std::abs(p.y - 15.0) < 1e-9;
    EXPECT_TRUE(on_path) << p;
  }
}

TEST(PathTrace, PerLegSpeedWithinRange) {
  const Polyline line({{0.0, 0.0}, {50.0, 0.0}, {50.0, 50.0}});
  const PathTrace trace(line, 1.0, 5.0, RngStream(11));
  EXPECT_GE(trace.duration(), 100.0 / 5.0);
  EXPECT_LE(trace.duration(), 100.0 / 1.0);
}

TEST(PathTrace, InvalidSpeedsThrow) {
  const Polyline line({{0.0, 0.0}, {10.0, 0.0}});
  EXPECT_THROW(PathTrace(line, 0.0, 1.0, RngStream(1)), std::invalid_argument);
  EXPECT_THROW(PathTrace(line, 2.0, 1.0, RngStream(1)), std::invalid_argument);
}

TEST(UShapePath, GeometryMatchesBox) {
  const Aabb box{{0.0, 0.0}, {100.0, 100.0}};
  const Polyline path = u_shape_path(box, 10.0);
  ASSERT_EQ(path.vertices().size(), 4u);
  EXPECT_EQ(path.vertices()[0], Vec2(10.0, 90.0));
  EXPECT_EQ(path.vertices()[1], Vec2(10.0, 10.0));
  EXPECT_EQ(path.vertices()[2], Vec2(90.0, 10.0));
  EXPECT_EQ(path.vertices()[3], Vec2(90.0, 90.0));
  EXPECT_DOUBLE_EQ(path.length(), 80.0 * 3.0);
}

}  // namespace
}  // namespace fttt
