#include "mobility/gauss_markov.hpp"

#include <gtest/gtest.h>

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {100.0, 100.0}};

GaussMarkovConfig base_config() {
  GaussMarkovConfig cfg;
  cfg.field = kField;
  return cfg;
}

TEST(GaussMarkov, ConfigValidation) {
  GaussMarkovConfig bad = base_config();
  bad.memory = 1.5;
  EXPECT_THROW(GaussMarkov(bad, RngStream(1)), std::invalid_argument);
  bad = base_config();
  bad.step = 0.0;
  EXPECT_THROW(GaussMarkov(bad, RngStream(1)), std::invalid_argument);
  bad = base_config();
  bad.v_min = 5.0;
  bad.v_max = 1.0;
  EXPECT_THROW(GaussMarkov(bad, RngStream(1)), std::invalid_argument);
}

TEST(GaussMarkov, StaysInsideField) {
  const GaussMarkov gm(base_config(), RngStream(2));
  for (double t = 0.0; t <= 60.0; t += 0.1)
    EXPECT_TRUE(kField.contains(gm.position_at(t))) << "t=" << t;
}

TEST(GaussMarkov, SpeedRespectsClamps) {
  GaussMarkovConfig cfg = base_config();
  cfg.v_max = 4.0;
  const GaussMarkov gm(cfg, RngStream(3));
  for (double t = 0.0; t < 59.0; t += 0.25) {
    const double v = distance(gm.position_at(t), gm.position_at(t + 0.25)) / 0.25;
    EXPECT_LE(v, 4.0 + 1e-9);
  }
}

TEST(GaussMarkov, HighMemoryIsSmootherThanLowMemory) {
  // Smoothness measured as mean angle between consecutive displacement
  // vectors: strongly correlated motion turns less per step.
  const auto turniness = [](double memory) {
    GaussMarkovConfig cfg;
    cfg.field = {{0.0, 0.0}, {10000.0, 10000.0}};  // huge: avoid reflections
    cfg.memory = memory;
    const GaussMarkov gm(cfg, RngStream(4));
    double total = 0.0;
    int count = 0;
    for (double t = 0.5; t < 59.0; t += 0.25) {
      const Vec2 a = gm.position_at(t) - gm.position_at(t - 0.25);
      const Vec2 b = gm.position_at(t + 0.25) - gm.position_at(t);
      const double na = norm(a);
      const double nb = norm(b);
      if (na < 1e-9 || nb < 1e-9) continue;
      total += std::acos(std::clamp(dot(a, b) / (na * nb), -1.0, 1.0));
      ++count;
    }
    return total / count;
  };
  EXPECT_LT(turniness(0.95), turniness(0.3));
}

TEST(GaussMarkov, Reproducible) {
  const GaussMarkov a(base_config(), RngStream(7));
  const GaussMarkov b(base_config(), RngStream(7));
  for (double t = 0.0; t <= 60.0; t += 1.0) EXPECT_EQ(a.position_at(t), b.position_at(t));
}

TEST(GaussMarkov, ContinuousInterpolation) {
  const GaussMarkov gm(base_config(), RngStream(8));
  for (double t = 0.0; t < 59.9; t += 0.05) {
    const double step = distance(gm.position_at(t), gm.position_at(t + 0.05));
    EXPECT_LE(step, 8.0 * 0.05 + 1e-9);  // bounded by v_max
  }
}

TEST(GaussMarkov, HoldsFinalPositionPastDuration) {
  const GaussMarkov gm(base_config(), RngStream(9));
  EXPECT_EQ(gm.position_at(60.0), gm.position_at(500.0));
}

}  // namespace
}  // namespace fttt
