#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/random.hpp"
#include "common/stats.hpp"

namespace fttt {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
      done.notify_all();
    });
  int d = done.load();
  while (d < 100) {
    done.wait(d);
    d = done.load();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ThreadCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, pool);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; }, pool);
  EXPECT_EQ(count, 0);
  parallel_for(7, 8, [&](std::size_t i) { count += static_cast<int>(i); }, pool);
  EXPECT_EQ(count, 7);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  parallel_for(100, 200, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); }, pool);
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  ThreadPool pool(2);  // deliberately small: all workers may be busy
  std::atomic<int> total{0};
  parallel_for(0, 8,
               [&](std::size_t) {
                 parallel_for(0, 8, [&](std::size_t) { total.fetch_add(1); }, pool);
               },
               pool);
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  ThreadPool pool(8);
  const auto squares =
      parallel_map<std::size_t>(100, [](std::size_t i) { return i * i; }, pool);
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMap, DeterministicAcrossThreadCounts) {
  // The same substream-keyed computation must give identical results on 1
  // and 8 threads — the reproducibility contract of the Monte-Carlo layer.
  auto compute = [](ThreadPool& pool) {
    return parallel_map<double>(64,
                                [](std::size_t i) {
                                  RngStream rng = RngStream(2024).substream(i);
                                  RunningStats s;
                                  for (int d = 0; d < 100; ++d) s.add(rng.normal(0.0, 1.0));
                                  return s.mean();
                                },
                                pool);
  };
  ThreadPool one(1);
  ThreadPool eight(8);
  EXPECT_EQ(compute(one), compute(eight));
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::atomic<int> n{0};
  parallel_for(0, 1000, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 1000);
}

}  // namespace
}  // namespace fttt
