// Shutdown-semantics suite for ThreadPool. Every test here must also pass
// under ThreadSanitizer (the tsan preset runs the tests_parallel label):
// the submit/shutdown race is exercised with real threads, not mocks.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace fttt {
namespace {

TEST(PoolShutdown, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  pool.shutdown();
  std::atomic<bool> ran{false};
  EXPECT_FALSE(pool.submit([&] { ran.store(true); }));
  EXPECT_FALSE(ran.load());
  EXPECT_TRUE(pool.stopped());
}

TEST(PoolShutdown, RejectedTaskIsDestroyedWithoutRunning) {
  ThreadPool pool(1);
  pool.shutdown();
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> observer = token;
  EXPECT_FALSE(pool.submit([token = std::move(token)] { (void)*token; }));
  // The rejected closure (sole owner of the token) must have been freed.
  EXPECT_TRUE(observer.expired());
}

TEST(PoolShutdown, ShutdownDrainsAcceptedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  const int kTasks = 64;
  for (int i = 0; i < kTasks; ++i)
    EXPECT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
  pool.shutdown();  // must not drop anything already accepted
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(PoolShutdown, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
  // Destructor performs a third, equally harmless shutdown.
}

TEST(PoolShutdown, EveryAcceptedTaskRunsUnderConcurrentShutdown) {
  // Producers race shutdown(): each submit must either be accepted (and
  // then run during the drain) or be rejected — never silently dropped.
  for (int round = 0; round < 8; ++round) {
    auto pool = std::make_unique<ThreadPool>(2);
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> producers;
    producers.reserve(3);
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < 50; ++i)
          if (pool->submit([&] { executed.fetch_add(1); }))
            accepted.fetch_add(1);
      });
    }
    go.store(true);
    pool->shutdown();
    for (auto& t : producers) t.join();
    EXPECT_EQ(executed.load(), accepted.load());
  }
}

TEST(PoolShutdown, TaskSubmittingDuringDrainIsAcceptedOrRejected) {
  std::atomic<int> accepted{1};  // the seed task below
  std::atomic<int> executed{0};
  {
    ThreadPool pool(1);
    ASSERT_TRUE(pool.submit([&] {
      executed.fetch_add(1);
      // Runs on a worker; the pool may or may not be stopping yet.
      if (pool.submit([&] { executed.fetch_add(1); })) accepted.fetch_add(1);
    }));
    pool.shutdown();
  }
  EXPECT_EQ(executed.load(), accepted.load());
}

TEST(PoolShutdown, ParallelForFallsBackToCallerAfterShutdown) {
  ThreadPool pool(4);
  pool.shutdown();
  // With the workers gone every submit is rejected; the calling thread
  // must still complete the whole range serially.
  std::atomic<int> hits{0};
  parallel_for(0, 100, [&](std::size_t) { hits.fetch_add(1); }, pool);
  EXPECT_EQ(hits.load(), 100);
}

}  // namespace
}  // namespace fttt
