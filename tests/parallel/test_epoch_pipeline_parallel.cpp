// Race coverage for the epoch pipeline and the face-map cache: these
// run under the tsan preset (tests_parallel label) with real thread
// fan-out, so TSan sees the parallel precompute sharing the batch
// matcher, the single-flight cache build, and concurrent hits.
#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "core/facemap_cache.hpp"
#include "net/deployment.hpp"
#include "sim/epoch_pipeline.hpp"
#include "sim/montecarlo.hpp"
#include "sim/runner.hpp"

namespace fttt {
namespace {

ScenarioConfig quick_config() {
  ScenarioConfig cfg;
  cfg.sensor_count = 8;
  cfg.duration = 8.0;
  cfg.grid_cell = 2.0;
  return cfg;
}

TEST(EpochPipelineParallel, PrecomputeFanOutMatchesSerial) {
  const std::array<Method, 4> methods{Method::kFttt, Method::kFtttExtended,
                                      Method::kPathMatching, Method::kDirectMle};
  const TrackingResult serial = run_tracking(quick_config(), methods);
  ThreadPool pool(4);
  const TrackingResult piped = run_tracking_pipelined(quick_config(), methods, 0, pool);
  ASSERT_EQ(serial.methods.size(), piped.methods.size());
  for (std::size_t m = 0; m < serial.methods.size(); ++m) {
    ASSERT_EQ(serial.methods[m].errors.size(), piped.methods[m].errors.size());
    for (std::size_t e = 0; e < serial.methods[m].errors.size(); ++e)
      EXPECT_EQ(serial.methods[m].errors[e], piped.methods[m].errors[e]);
  }
}

TEST(EpochPipelineParallel, ConcurrentCacheLookupsSingleFlight) {
  FaceMapCache cache;
  const Deployment nodes{{0, {5.0, 5.0}}, {1, {15.0, 5.0}}, {2, {5.0, 15.0}}, {3, {15.0, 15.0}}};
  const Aabb field{{0.0, 0.0}, {20.0, 20.0}};
  constexpr std::size_t kThreads = 8;
  std::vector<FaceMapCache::Entry> entries(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t i = 0; i < kThreads; ++i)
      threads.emplace_back(
          [&, i] { entries[i] = cache.get_or_build(nodes, 1.2, field, 1.0); });
    for (std::thread& t : threads) t.join();
  }
  for (std::size_t i = 1; i < kThreads; ++i) {
    EXPECT_EQ(entries[0].map.get(), entries[i].map.get());
    EXPECT_EQ(entries[0].table.get(), entries[i].table.get());
  }
  const FaceMapCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kThreads - 1);
}

TEST(EpochPipelineParallel, ConcurrentTrialsShareTheCache) {
  // monte_carlo runs trials across the pool while every trial hits the
  // same cache: grid deployment makes all keys identical, so the cache
  // serves one build to concurrent consumers.
  ScenarioConfig cfg = quick_config();
  cfg.deployment = DeploymentKind::kGrid;
  const std::array<Method, 2> methods{Method::kFttt, Method::kDirectMle};
  ThreadPool pool(4);
  FaceMapCache cache;
  const std::vector<MonteCarloSummary> summary =
      monte_carlo(cfg, methods, 6, pool, &cache);
  ASSERT_EQ(summary.size(), 2u);
  for (const MonteCarloSummary& s : summary) EXPECT_GT(s.pooled.count(), 0u);
  EXPECT_EQ(cache.stats().builds, 2u);  // one per unique (deployment, C) key
}

}  // namespace
}  // namespace fttt
