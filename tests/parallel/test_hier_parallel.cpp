// Hierarchical-descent concurrency harness (runs under TSan via
// tests_parallel): several matchers sharing one immutable coarse tier,
// concurrent descents on one matcher, and batch determinism across
// thread counts with the descent engaged.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "core/batch_matcher.hpp"
#include "core/facemap.hpp"
#include "core/hier_facemap.hpp"
#include "core/matcher.hpp"
#include "core/signature_index.hpp"
#include "net/deployment.hpp"
#include "rf/uncertainty.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {40.0, 40.0}};

std::shared_ptr<const FaceMap> make_map() {
  RngStream rng(31);
  const Deployment nodes = random_deployment(kField, 6, rng);
  const double C = uncertainty_constant(1.0, 4.0, 6.0);
  return std::make_shared<const FaceMap>(FaceMap::build(nodes, C, kField, 1.0));
}

std::vector<SamplingVector> make_batch(const FaceMap& map, std::size_t n,
                                       std::uint64_t seed) {
  RngStream rng(seed);
  std::vector<SamplingVector> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Face& f = map.faces()[rng.uniform_index(map.face_count())];
    SamplingVector vd;
    vd.known.assign(map.dimension(), true);
    for (SigValue v : f.signature) vd.value.push_back(static_cast<double>(v));
    const std::size_t c = rng.uniform_index(vd.value.size());
    vd.value[c] = static_cast<double>(static_cast<int>(rng.uniform_index(3)) - 1);
    if (rng.bernoulli(0.3)) vd.known[rng.uniform_index(vd.known.size())] = false;
    batch.push_back(std::move(vd));
  }
  return batch;
}

TEST(HierParallel, BatchDescentIdenticalAcrossThreadCounts) {
  const auto map = make_map();
  const std::vector<SamplingVector> batch = make_batch(*map, 128, 7);

  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool eight(8);
  const auto run = [&](ThreadPool& pool) {
    BatchMatcher matcher(map, {}, pool);
    matcher.build_hierarchy();
    return matcher.match(batch);
  };
  const auto r1 = run(one);
  const auto r2 = run(two);
  const auto r8 = run(eight);
  const ExhaustiveMatcher reference;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const MatchResult s = reference.match(*map, batch[i]);
    for (const auto* r : {&r1, &r2, &r8}) {
      EXPECT_EQ(s.face, (*r)[i].face) << i;
      EXPECT_EQ(s.similarity, (*r)[i].similarity) << i;
      EXPECT_EQ(s.tied_faces, (*r)[i].tied_faces) << i;
    }
  }
}

TEST(HierParallel, ConcurrentDescentsShareOneTierRaceFree) {
  // One tier, four matchers, four caller threads: the tier and index are
  // immutable after build, so concurrent descents must be clean under
  // TSan and agree with the scalar reference.
  const auto map = make_map();
  ThreadPool pool(4);
  BatchMatcher owner(map, {}, pool);
  owner.build_hierarchy();

  std::vector<std::unique_ptr<BatchMatcher>> matchers;
  for (int i = 0; i < 4; ++i) {
    matchers.push_back(std::make_unique<BatchMatcher>(map, BatchMatcher::Config{}, pool));
    matchers.back()->attach_hierarchy(owner.shared_hierarchy(), owner.shared_index());
  }

  std::vector<std::vector<SamplingVector>> batches;
  for (std::uint64_t s = 0; s < 4; ++s) batches.push_back(make_batch(*map, 48, 100 + s));

  std::vector<std::vector<MatchResult>> results(batches.size());
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < batches.size(); ++t)
    callers.emplace_back([&, t] {
      results[t].resize(batches[t].size());
      for (std::size_t i = 0; i < batches[t].size(); ++i)
        results[t][i] = matchers[t]->descend(batches[t][i]);
    });
  for (std::thread& t : callers) t.join();

  const ExhaustiveMatcher reference;
  for (std::size_t t = 0; t < batches.size(); ++t) {
    for (std::size_t i = 0; i < batches[t].size(); ++i) {
      const MatchResult s = reference.match(*map, batches[t][i]);
      EXPECT_EQ(s.face, results[t][i].face) << t << "/" << i;
      EXPECT_EQ(s.similarity, results[t][i].similarity) << t << "/" << i;
    }
  }
}

TEST(HierParallel, ConcurrentBatchCallsOnOneHierMatcher) {
  const auto map = make_map();
  ThreadPool pool(4);
  BatchMatcher matcher(map, BatchMatcher::Config{}, pool);
  matcher.build_hierarchy();

  std::vector<std::vector<SamplingVector>> batches;
  for (std::uint64_t s = 0; s < 4; ++s) batches.push_back(make_batch(*map, 48, 200 + s));

  std::vector<std::vector<MatchResult>> results(batches.size());
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < batches.size(); ++t)
    callers.emplace_back([&, t] { results[t] = matcher.match(batches[t]); });
  for (std::thread& t : callers) t.join();

  const ExhaustiveMatcher reference;
  for (std::size_t t = 0; t < batches.size(); ++t) {
    ASSERT_EQ(results[t].size(), batches[t].size());
    for (std::size_t i = 0; i < batches[t].size(); ++i)
      EXPECT_EQ(reference.match(*map, batches[t][i]).face, results[t][i].face)
          << t << "/" << i;
  }
}

}  // namespace
}  // namespace fttt
