#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace fttt {
namespace {

TEST(SubmitRange, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 257;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<std::size_t> done{0};
  const std::size_t accepted = pool.submit_range(n, [&](std::size_t i) {
    hits[i].fetch_add(1);
    if (done.fetch_add(1) + 1 == n) done.notify_all();
  });
  EXPECT_EQ(accepted, n);
  std::size_t d = done.load();
  while (d < n) {
    done.wait(d);
    d = done.load();
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(SubmitRange, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.submit_range(0, [](std::size_t) { FAIL() << "must not run"; }), 0u);
}

TEST(SubmitRange, RejectedAfterShutdownLikeSubmit) {
  ThreadPool pool(2);
  pool.shutdown();
  std::atomic<int> ran{0};
  // The bulk API carries submit()'s contract: after shutdown() the pool
  // rejects the whole range and nothing runs.
  EXPECT_EQ(pool.submit_range(8, [&](std::size_t) { ran.fetch_add(1); }), 0u);
  EXPECT_FALSE(pool.submit([&] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 0);
}

TEST(SubmitRange, AllOrNothingAgainstConcurrentShutdown) {
  // A submit_range racing shutdown() either lands the whole range before
  // the stop (and the drain runs every task) or observes the stop and
  // lands nothing — never a partial range.
  for (int trial = 0; trial < 20; ++trial) {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::thread stopper([&] { pool.shutdown(); });
    const std::size_t n = 16;
    const std::size_t accepted =
        pool.submit_range(n, [&](std::size_t) { ran.fetch_add(1); });
    stopper.join();  // shutdown() drained everything that was enqueued
    EXPECT_TRUE(accepted == 0 || accepted == n) << "partial acceptance";
    EXPECT_EQ(static_cast<std::size_t>(ran.load()), accepted);
  }
}

TEST(SubmitRange, SingleTaskRange) {
  ThreadPool pool(2);
  std::atomic<int> got{-1};
  pool.submit_range(1, [&](std::size_t i) {
    got.store(static_cast<int>(i));
    got.notify_all();
  });
  int g = got.load();
  while (g < 0) {
    got.wait(g);
    g = got.load();
  }
  EXPECT_EQ(g, 0);
}

}  // namespace
}  // namespace fttt
