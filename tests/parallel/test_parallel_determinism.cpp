// Bit-reproducibility of the data-parallel layer at 1/2/8 threads: the
// determinism contract (docs/ARCHITECTURE.md) says thread count is a
// performance knob, never a results knob. Runs clean under TSan.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/random.hpp"
#include "common/stats.hpp"
#include "core/facemap.hpp"
#include "net/deployment.hpp"

namespace fttt {
namespace {

/// Per-index RNG-substream kernel: any scheduling-order dependence shows
/// up as a bitwise difference between thread counts.
std::vector<double> substream_sweep(ThreadPool& pool) {
  std::vector<double> out(96);
  parallel_for(0, out.size(),
               [&](std::size_t i) {
                 RngStream rng = RngStream(77).substream(i);
                 RunningStats s;
                 for (int d = 0; d < 50; ++d) s.add(rng.normal(0.0, 1.0));
                 out[i] = s.mean() + s.stddev();
               },
               pool);
  return out;
}

TEST(ParallelDeterminism, SweepIdenticalAtOneTwoEightThreads) {
  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool eight(8);
  const std::vector<double> ref = substream_sweep(one);
  EXPECT_EQ(ref, substream_sweep(two));
  EXPECT_EQ(ref, substream_sweep(eight));
}

TEST(ParallelDeterminism, RepeatedRunsOnSamePoolAreIdentical) {
  ThreadPool pool(8);
  const std::vector<double> first = substream_sweep(pool);
  for (int run = 0; run < 3; ++run) EXPECT_EQ(first, substream_sweep(pool));
}

TEST(ParallelDeterminism, FaceMapBuildIdenticalAcrossThreadCounts) {
  // FaceMap::build parallelizes phase 1 over cells and assigns face ids
  // in a sequential phase 2; the whole map must be invariant to the pool
  // size used for phase 1.
  const Aabb field{{0.0, 0.0}, {40.0, 40.0}};
  const Deployment nodes = grid_deployment(field, 9);

  auto build_with = [&](std::size_t threads) {
    ThreadPool pool(threads);
    return FaceMap::build(nodes, 1.2, field, 2.0, pool);
  };
  const FaceMap ref = build_with(1);
  for (std::size_t threads : {2, 8}) {
    const FaceMap map = build_with(threads);
    ASSERT_EQ(map.face_count(), ref.face_count()) << threads << " threads";
    for (std::size_t flat = 0; flat < map.grid().cell_count(); ++flat)
      ASSERT_EQ(map.face_of_cell(flat), ref.face_of_cell(flat))
          << "cell " << flat << " at " << threads << " threads";
    for (FaceId f = 0; f < map.face_count(); ++f) {
      ASSERT_EQ(map.face(f).signature, ref.face(f).signature) << "face " << f;
      ASSERT_EQ(map.neighbors(f), ref.neighbors(f)) << "face " << f;
    }
  }
}

}  // namespace
}  // namespace fttt
