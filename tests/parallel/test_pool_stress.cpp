// Stress suite for ThreadPool/parallel_for: many producers, nested
// parallelism, and rapid construct/destroy cycles. Must run clean under
// ThreadSanitizer (tsan preset, tests_parallel label).
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace fttt {
namespace {

TEST(PoolStress, ManyProducersEveryTaskRunsExactlyOnce) {
  ThreadPool pool(4);
  const int kProducers = 8;
  const int kTasksEach = 200;
  std::vector<std::atomic<int>> hits(kProducers * kTasksEach);
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kTasksEach; ++i) {
        const int slot = p * kTasksEach + i;
        ASSERT_TRUE(pool.submit([&, slot] {
          hits[static_cast<std::size_t>(slot)].fetch_add(1);
          done.fetch_add(1);
          done.notify_all();
        }));
      }
    });
  }
  for (auto& t : producers) t.join();
  int d = done.load();
  while (d < kProducers * kTasksEach) {
    done.wait(d);
    d = done.load();
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PoolStress, NestedParallelForStorm) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  parallel_for(0, 16,
               [&](std::size_t) {
                 parallel_for(0, 64, [&](std::size_t) { total.fetch_add(1); },
                              pool);
               },
               pool);
  EXPECT_EQ(total.load(), 16 * 64);
}

TEST(PoolStress, RapidConstructDestroyWithPendingWork) {
  // The destructor's drain guarantee, hammered: every accepted task runs
  // even when the pool dies immediately after the submit burst.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(2);
      for (int i = 0; i < 32; ++i)
        ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
    }
    EXPECT_EQ(ran.load(), 32) << "round " << round;
  }
}

TEST(PoolStress, ParallelMapNonTrivialPayload) {
  ThreadPool pool(4);
  const auto words = parallel_map<std::string>(
      500, [](std::size_t i) { return "w" + std::to_string(i * 3); }, pool);
  ASSERT_EQ(words.size(), 500u);
  for (std::size_t i = 0; i < words.size(); ++i)
    EXPECT_EQ(words[i], "w" + std::to_string(i * 3));
}

TEST(PoolStress, ConcurrentParallelForsOnSharedPool) {
  // Several threads drive independent parallel_for calls through one
  // shared pool; per-call completion tracking must keep them isolated.
  ThreadPool pool(4);
  const int kDrivers = 4;
  std::vector<std::atomic<long>> sums(kDrivers);
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      parallel_for(0, 1000,
                   [&, d](std::size_t i) {
                     sums[static_cast<std::size_t>(d)].fetch_add(
                         static_cast<long>(i));
                   },
                   pool);
    });
  }
  for (auto& t : drivers) t.join();
  for (const auto& s : sums) EXPECT_EQ(s.load(), 999L * 1000L / 2);
}

}  // namespace
}  // namespace fttt
