// Race probe for the distributed (cluster-head) tracking layer. The
// builds below hammer the shared global ThreadPool from several client
// threads at once, and localization runs concurrently on independent
// instances; under the tsan preset any hidden shared mutable state
// (static caches, shared maps, pool bookkeeping) becomes a hard failure.
#include "core/distributed_tracker.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {80.0, 80.0}};

Deployment field_nodes() { return grid_deployment(kField, 16); }

GroupingSampling sample_at(const Deployment& nodes, Vec2 target,
                           std::uint64_t epoch) {
  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 0.0, .d0 = 1.0};
  cfg.sensing_range = 60.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 3;
  const NoFaults faults;
  return collect_group(nodes, cfg, faults, epoch, 0.0,
                       [&](double) { return target; },
                       RngStream(3).substream(epoch));
}

DistributedTracker::Config tracker_config() {
  DistributedTracker::Config cfg;
  cfg.clusters = 3;
  cfg.eps = 0.0;
  cfg.grid_cell = 2.0;
  return cfg;
}

TEST(DistributedTrackerRace, ConcurrentBuildsOnSharedGlobalPool) {
  // Each constructor runs per-head FaceMap::build sweeps through the
  // process-global pool; concurrent clients must not perturb each other.
  const Deployment nodes = field_nodes();
  const DistributedTracker reference(nodes, 1.2, kField, tracker_config());

  const int kClients = 4;
  std::vector<std::unique_ptr<DistributedTracker>> built(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      built[static_cast<std::size_t>(c)] = std::make_unique<DistributedTracker>(
          nodes, 1.2, kField, tracker_config());
    });
  }
  for (auto& t : clients) t.join();

  for (const auto& dt : built) {
    ASSERT_NE(dt, nullptr);
    EXPECT_EQ(dt->cluster_count(), reference.cluster_count());
    EXPECT_EQ(dt->total_faces(), reference.total_faces());
    EXPECT_EQ(dt->max_dimension(), reference.max_dimension());
  }
}

TEST(DistributedTrackerRace, ConcurrentLocalizeOnIndependentInstances) {
  // localize() mutates per-instance routing state, so instances are the
  // unit of thread confinement; concurrent trajectories on separate
  // instances must reproduce the serial result bit for bit.
  const Deployment nodes = field_nodes();
  const std::vector<Vec2> targets{{17.0, 13.0}, {61.0, 22.0}, {20.0, 57.0},
                                  {66.0, 63.0}, {41.0, 38.0}};

  auto run_trajectory = [&](DistributedTracker& dt) {
    std::vector<Vec2> fixes;
    fixes.reserve(targets.size());
    std::uint64_t epoch = 0;
    for (Vec2 target : targets)
      fixes.push_back(dt.localize(sample_at(nodes, target, epoch++)).position);
    return fixes;
  };

  DistributedTracker serial(nodes, 1.2, kField, tracker_config());
  const std::vector<Vec2> expected = run_trajectory(serial);

  const int kClients = 3;
  std::vector<std::vector<Vec2>> results(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      DistributedTracker dt(nodes, 1.2, kField, tracker_config());
      results[static_cast<std::size_t>(c)] = run_trajectory(dt);
    });
  }
  for (auto& t : clients) t.join();

  for (const auto& fixes : results) {
    ASSERT_EQ(fixes.size(), expected.size());
    for (std::size_t i = 0; i < fixes.size(); ++i) {
      EXPECT_EQ(fixes[i].x, expected[i].x) << "fix " << i;
      EXPECT_EQ(fixes[i].y, expected[i].y) << "fix " << i;
    }
  }
}

TEST(DistributedTrackerRace, ConcurrentConstQueriesOnSharedInstance) {
  const Deployment nodes = field_nodes();
  const DistributedTracker dt(nodes, 1.2, kField, tracker_config());
  const std::size_t faces = dt.total_faces();
  const std::size_t dim = dt.max_dimension();

  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(dt.total_faces(), faces);
        EXPECT_EQ(dt.max_dimension(), dim);
        EXPECT_EQ(dt.clusters().size(), dt.cluster_count());
      }
    });
  }
  for (auto& t : readers) t.join();
}

}  // namespace
}  // namespace fttt
