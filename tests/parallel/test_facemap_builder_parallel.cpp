// Concurrency coverage of the plane-major face-map engine: the
// rasterization fan-out, the chunked hash pass and the verify/emit pass
// all run on the shared pool, so a data race would surface here under
// TSan (the tsan preset runs the tests_parallel label).
#include "core/facemap_builder.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.hpp"
#include "net/deployment.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {20.0, 20.0}};
constexpr double kCell = 0.5;

void expect_same(const FaceMap& a, const FaceMap& b) {
  ASSERT_EQ(a.face_count(), b.face_count());
  for (const Face& f : b.faces()) {
    EXPECT_EQ(a.face(f.id).signature, f.signature);
    EXPECT_EQ(a.face(f.id).centroid, f.centroid);
    EXPECT_EQ(a.neighbors(f.id), b.neighbors(f.id));
  }
  for (std::size_t c = 0; c < b.grid().cell_count(); ++c)
    ASSERT_EQ(a.face_of_cell(c), b.face_of_cell(c));
}

TEST(FaceMapBuilderParallel, BitReproducibleAtAnyThreadCount) {
  RngStream rng(97);
  const Deployment nodes = random_deployment(kField, 8, rng);
  ThreadPool solo(1);
  FaceMapBuilder reference(nodes, 4.0, kField, kCell, solo);
  const FaceMap want = reference.build();
  for (std::size_t threads : {2u, 5u, 8u}) {
    ThreadPool pool(threads);
    FaceMapBuilder builder(nodes, 4.0, kField, kCell, pool);
    SCOPED_TRACE(testing::Message() << threads << " threads");
    expect_same(builder.build(), want);
  }
}

TEST(FaceMapBuilderParallel, ConcurrentBuildersShareThePool) {
  // Several builders (one per thread, each its own state) race their
  // full build + incremental rebuild on the same pool.
  RngStream rng(131);
  const Deployment nodes = random_deployment(kField, 7, rng);
  const FaceMap full = FaceMap::build(nodes, 2.0, kField, kCell);
  FaceMapBuilder degraded_ref(nodes, 2.0, kField, kCell);
  degraded_ref.deactivate(3);
  const FaceMap degraded = degraded_ref.build();

  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      FaceMapBuilder builder(nodes, 2.0, kField, kCell);
      expect_same(builder.build(), full);
      builder.deactivate(3);
      expect_same(builder.build(), degraded);
      builder.activate(3);
      expect_same(builder.build(), full);
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace fttt
