// BoundedQueue policy contract: the three overload behaviours — block,
// reject, shed-oldest — plus the close semantics the serve fleet leans
// on (accepted work survives close; only the shedding policy ever drops
// it). The concurrent cases run under the tsan preset.
#include "parallel/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fttt {
namespace {

TEST(BoundedQueue, ZeroCapacityThrows) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueue, TryPushRejectsWhenFullKeepingContents) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: rejected, nothing evicted
  std::vector<int> out;
  EXPECT_EQ(q.drain(out), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BoundedQueue, ShedOldestEvictsFromTheFront) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push_shed_oldest(1).accepted);
  EXPECT_TRUE(q.push_shed_oldest(2).accepted);
  const auto r = q.push_shed_oldest(3);  // evicts 1, admits 3
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(r.shed, 1u);
  std::vector<int> out;
  q.drain(out);
  EXPECT_EQ(out, (std::vector<int>{2, 3}));
}

TEST(BoundedQueue, DrainHonorsMaxItemsOldestFirst) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(q.drain(out, 2), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.drain(out), 3u);  // 0 = no limit
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BoundedQueue, CloseRejectsPushesButKeepsQueuedItemsDrainable) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(7));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(8));
  EXPECT_FALSE(q.push_wait(9));
  EXPECT_FALSE(q.push_shed_oldest(10).accepted);
  int item = 0;
  EXPECT_TRUE(q.pop_wait(item));  // accepted work outlives close()
  EXPECT_EQ(item, 7);
  EXPECT_FALSE(q.pop_wait(item));  // closed and empty
}

TEST(BoundedQueue, PushWaitBlocksUntilSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push_wait(2));  // blocks: queue is full
    pushed.store(true);
  });
  EXPECT_FALSE(pushed.load());
  std::vector<int> out;
  while (q.drain(out) == 0) std::this_thread::yield();
  producer.join();
  EXPECT_TRUE(pushed.load());
  q.drain(out);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BoundedQueue, CloseWakesBlockedProducers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push_wait(2)); });
  q.close();
  producer.join();
}

TEST(BoundedQueue, ConcurrentShedAccountingReconcilesExactly) {
  // Every producer-side outcome is counted; accepted - shed must equal
  // what is still queued once the producers stop. Any lost or
  // double-counted item breaks the equality.
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 500;
  BoundedQueue<int> q(16);
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> shed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const auto r = q.push_shed_oldest(static_cast<int>(p * kPerProducer + i));
        if (r.accepted) accepted.fetch_add(1);
        shed.fetch_add(r.shed);
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  std::vector<int> out;
  const std::size_t drained = q.drain(out);
  EXPECT_EQ(accepted.load() - shed.load(), drained);
}

TEST(BoundedQueue, ConcurrentProducersAndConsumerLoseNothing) {
  // try_push outcomes partition every attempt; the consumer must see
  // exactly the accepted items (no duplication, no loss).
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 400;
  BoundedQueue<std::size_t> q(8);
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        if (q.try_push(p * kPerProducer + i))
          accepted.fetch_add(1);
        else
          rejected.fetch_add(1);
      }
    });
  }
  std::size_t consumed = 0;
  std::thread consumer([&] {
    std::size_t item;
    while (q.pop_wait(item)) ++consumed;
  });
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();
  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed, accepted.load());
}

}  // namespace
}  // namespace fttt
