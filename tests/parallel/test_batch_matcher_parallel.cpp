// BatchMatcher concurrency harness (runs under TSan via tests_parallel):
// the batch fan-out must be race-free, deterministic at any thread count,
// and degrade gracefully against a stopped pool.
#include "core/batch_matcher.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "core/matcher.hpp"
#include "net/deployment.hpp"
#include "rf/uncertainty.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {40.0, 40.0}};

std::shared_ptr<const FaceMap> make_map() {
  RngStream rng(31);
  const Deployment nodes = random_deployment(kField, 6, rng);
  const double C = uncertainty_constant(1.0, 4.0, 6.0);
  return std::make_shared<const FaceMap>(FaceMap::build(nodes, C, kField, 1.0));
}

std::vector<SamplingVector> make_batch(const FaceMap& map, std::size_t n,
                                       std::uint64_t seed) {
  RngStream rng(seed);
  std::vector<SamplingVector> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Face& f = map.faces()[rng.uniform_index(map.face_count())];
    SamplingVector vd;
    vd.known.assign(map.dimension(), true);
    for (SigValue v : f.signature) vd.value.push_back(static_cast<double>(v));
    const std::size_t c = rng.uniform_index(vd.value.size());
    vd.value[c] = static_cast<double>(static_cast<int>(rng.uniform_index(3)) - 1);
    if (rng.bernoulli(0.3)) vd.known[rng.uniform_index(vd.known.size())] = false;
    batch.push_back(std::move(vd));
  }
  return batch;
}

void expect_equal_results(const std::vector<MatchResult>& a,
                          const std::vector<MatchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].face, b[i].face) << i;
    EXPECT_EQ(a[i].similarity, b[i].similarity) << i;
    EXPECT_EQ(a[i].tied_faces, b[i].tied_faces) << i;
  }
}

TEST(BatchMatcherParallel, IdenticalResultsAcrossThreadCounts) {
  const auto map = make_map();
  const std::vector<SamplingVector> batch = make_batch(*map, 128, 7);

  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool eight(8);
  const auto r1 = BatchMatcher(map, {}, one).match(batch);
  const auto r2 = BatchMatcher(map, {}, two).match(batch);
  const auto r8 = BatchMatcher(map, {}, eight).match(batch);
  expect_equal_results(r1, r2);
  expect_equal_results(r1, r8);

  // And all agree with the scalar reference.
  const ExhaustiveMatcher reference;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const MatchResult s = reference.match(*map, batch[i]);
    EXPECT_EQ(s.face, r8[i].face);
    EXPECT_EQ(s.similarity, r8[i].similarity);
    EXPECT_EQ(s.tied_faces, r8[i].tied_faces);
  }
}

TEST(BatchMatcherParallel, StoppedPoolFallsBackToCaller) {
  const auto map = make_map();
  ThreadPool pool(4);
  pool.shutdown();
  const BatchMatcher matcher(map, {}, pool);
  const std::vector<SamplingVector> batch = make_batch(*map, 64, 9);
  const auto results = matcher.match(batch);
  const ExhaustiveMatcher reference;
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(reference.match(*map, batch[i]).face, results[i].face) << i;
}

TEST(BatchMatcherParallel, ConcurrentMatchCallsAreIndependent) {
  // match() is const and the fan-out state is per-call; several threads
  // sharing one matcher (and one pool) must not interfere.
  const auto map = make_map();
  ThreadPool pool(4);
  const BatchMatcher matcher(map, {}, pool);
  const ExhaustiveMatcher reference;

  std::vector<std::vector<SamplingVector>> batches;
  batches.reserve(4);
  for (std::uint64_t s = 0; s < 4; ++s) batches.push_back(make_batch(*map, 48, 100 + s));

  std::vector<std::vector<MatchResult>> results(batches.size());
  std::vector<std::thread> callers;
  callers.reserve(batches.size());
  for (std::size_t t = 0; t < batches.size(); ++t)
    callers.emplace_back([&, t] { results[t] = matcher.match(batches[t]); });
  for (std::thread& t : callers) t.join();

  for (std::size_t t = 0; t < batches.size(); ++t) {
    ASSERT_EQ(results[t].size(), batches[t].size());
    for (std::size_t i = 0; i < batches[t].size(); ++i) {
      const MatchResult s = reference.match(*map, batches[t][i]);
      EXPECT_EQ(s.face, results[t][i].face) << t << "/" << i;
      EXPECT_EQ(s.similarity, results[t][i].similarity) << t << "/" << i;
    }
  }
}

}  // namespace
}  // namespace fttt
