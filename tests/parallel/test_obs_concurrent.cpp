// Observability under concurrency (runs under TSan via the tsan preset's
// tests_parallel label): counters, histograms, and per-thread span rings
// hammered from the pool while another thread snapshots and exports.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace fttt {
namespace {

struct ScopedRecording {
  explicit ScopedRecording(bool on) { obs::set_enabled(on); }
  ~ScopedRecording() { obs::set_enabled(false); }
};

TEST(ObsConcurrent, CountersAreRaceFreeAndExact) {
  ScopedRecording rec(true);
  obs::Counter& ctr = obs::counter("testpar.ctr");
  const std::uint64_t before = ctr.value();
  constexpr std::size_t kAdds = 10000;
  ThreadPool pool(4);
  parallel_for(0, kAdds, [&](std::size_t) { ctr.add(1); }, pool);
  EXPECT_EQ(ctr.value(), before + kAdds);
}

TEST(ObsConcurrent, SpansFromManyThreadsAllRecorded) {
  ScopedRecording rec(true);
  obs::SpanSite& site = obs::span_site("testpar.span");
  const std::uint64_t before = site.hist->summary().count;
  constexpr std::size_t kSpans = 2000;
  ThreadPool pool(4);
  parallel_for(0, kSpans, [&](std::size_t) { obs::Span span{site}; }, pool);
  EXPECT_EQ(site.hist->summary().count, before + kSpans);
}

TEST(ObsConcurrent, ExportRacesRecordingSafely) {
  ScopedRecording rec(true);
  obs::SpanSite& site = obs::span_site("testpar.export.span");
  obs::Counter& ctr = obs::counter("testpar.export.ctr");
  std::atomic<bool> stop{false};

  ThreadPool pool(4);
  // Writers: spans + counter bumps until told to stop.
  for (int w = 0; w < 3; ++w) {
    ASSERT_TRUE(pool.submit([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::Span span{site};
        ctr.add(1);
      }
    }));
  }
  // Wait for the writers to actually start so every export below truly
  // interleaves with live recording.
  while (ctr.value() == 0) std::this_thread::yield();
  // Reader: exports interleave with live recording.
  for (int i = 0; i < 20; ++i) {
    std::ostringstream metrics;
    obs::write_metrics_json(metrics);
    EXPECT_FALSE(metrics.str().empty());
    std::ostringstream trace;
    obs::write_chrome_trace(trace);
    EXPECT_FALSE(trace.str().empty());
    (void)obs::snapshot();
  }
  stop.store(true, std::memory_order_relaxed);
  pool.shutdown();
  EXPECT_GT(ctr.value(), 0u);
}

TEST(ObsConcurrent, InstrumentedPoolRunsClean) {
  // The pool's own probes (queue depth, wait/run histograms) active
  // while tasks run — macro no-ops when the build compiles them out.
  ScopedRecording rec(true);
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  const std::size_t submitted =
      pool.submit_range(500, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
  EXPECT_EQ(submitted, 500u);
  pool.shutdown();
  EXPECT_EQ(sum.load(), 500u * 499u / 2u);
  if (obs::kCompiledIn) {
    EXPECT_GE(obs::counter("pool.tasks.submitted").value(), 500u);
    EXPECT_GE(obs::histogram("pool.task.run", "us").summary().count, 500u);
  }
}

}  // namespace
}  // namespace fttt
