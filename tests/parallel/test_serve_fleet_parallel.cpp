// Race probe for the serve fleet's ingestion edge: producer threads
// hammer submit()/try_submit()/submit_wait() while one service thread
// ticks, churns the deployment, and finally closes. Under the tsan
// preset any unsynchronized state between the producer side and the
// service loop becomes a hard failure; in every build the producer-side
// accounting must reconcile *exactly* — enqueued frames either resolve
// or are still queued, shed plus resolved plus queued equals accepted,
// and no track is ever dropped.
#include "serve/fleet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "net/deployment.hpp"
#include "serve/workload.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {60.0, 60.0}};

SyntheticWorkload::Config stress_workload(std::size_t tracks) {
  SyntheticWorkload::Config cfg;
  cfg.tracks = tracks;
  cfg.sampling.model =
      PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 0.5, .d0 = 1.0};
  cfg.sampling.sensing_range = 90.0;
  cfg.sampling.samples_per_group = 3;
  return cfg;
}

TEST(ServeFleetRace, ProducersAgainstServiceLoopReconcileExactly) {
  const Deployment roster = grid_deployment(kField, 9);
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kFramesPerProducer = 120;
  constexpr std::size_t kTracksPerProducer = 8;
  const SyntheticWorkload workload(
      roster, kField, stress_workload(kProducers * kTracksPerProducer), 17);

  TrackManagerFleet::Config cfg;
  cfg.shards = 4;
  cfg.queue_capacity = 32;  // small on purpose: force shedding under load
  TrackManagerFleet fleet(roster, 1.2, kField, 2.0, cfg);

  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Each producer owns a disjoint track range and mixes the two
      // non-blocking policies, counting every outcome.
      for (std::size_t i = 0; i < kFramesPerProducer; ++i) {
        const TrackId track = p * kTracksPerProducer + (i % kTracksPerProducer);
        const std::uint64_t epoch = i / kTracksPerProducer;
        ReportFrame frame = workload.frame(track, epoch);
        if (i % 3 == 0) {
          if (fleet.try_submit(std::move(frame)))
            accepted.fetch_add(1);
          else
            rejected.fetch_add(1);
        } else {
          ASSERT_TRUE(fleet.submit(std::move(frame)));  // shed-oldest admits
          accepted.fetch_add(1);
        }
      }
    });
  }

  // The service loop runs concurrently with the producers, churning the
  // deployment between ticks; resolved updates are counted per frame.
  std::size_t resolved = 0;
  std::size_t churned = 0;
  NodeId churn_node = 0;
  bool fail_next = true;
  std::uint64_t service_ticks = 0;
  constexpr std::size_t kTotal = kProducers * kFramesPerProducer;
  const auto churn_once = [&] {
    if (fail_next ? fleet.fail_node(churn_node) : fleet.revive_node(churn_node)) {
      if (!fail_next) churn_node = (churn_node + 1) % roster.size();
      fail_next = !fail_next;
      ++churned;
    }
  };
  while (accepted.load() + rejected.load() < kTotal) {
    if (++service_ticks % 2 == 0) churn_once();
    resolved += fleet.tick().size();
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  // Producers can outpace the loop entirely on a loaded machine; the
  // fail/revive-under-held-frames part of the contract must still run.
  while (churned < 2) {
    churn_once();
    resolved += fleet.tick().size();
  }
  resolved += fleet.tick().size();  // final drain after the join
  fleet.flush_rebuilds();           // settle any in-flight rebuild

  const TrackManagerFleet::Stats stats = fleet.stats();
  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kFramesPerProducer);
  EXPECT_EQ(stats.enqueued, accepted.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  // Conservation: every accepted frame was either shed or resolved.
  EXPECT_EQ(stats.enqueued, stats.shed + stats.frames);
  EXPECT_EQ(stats.frames, resolved);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GT(churned, 0u);
  // Off-thread rebuilds coalesce events that land while one is in
  // flight: every event is counted, and at least one rebuild adopted.
  EXPECT_EQ(stats.churn_events, churned);
  EXPECT_LE(stats.rebuilds, churned);
  EXPECT_GE(stats.rebuilds, 1u);
  // Zero dropped tracks: every track that had any frame resolved holds a
  // slot forever after; shedding can delay a track's first resolution
  // but the slot count can never exceed the track universe.
  EXPECT_LE(stats.tracks, kProducers * kTracksPerProducer);
  EXPECT_GT(stats.tracks, 0u);
}

TEST(ServeFleetRace, HierarchicalAsyncChurnUnderLoad) {
  // The double-buffered adoption race probe: off-thread rebuild tasks
  // (map build + tier patch + index patch) share the global pool with
  // tick()'s resolution parallel_for while producers keep the queue hot
  // and the service thread churns every other tick with no flushes.
  // Under tsan any read of the serving division by a rebuild task, or
  // publication without the rebuild mutex, is a hard failure; in every
  // build the accounting must still reconcile exactly.
  const Deployment roster = grid_deployment(kField, 9);
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kFramesPerProducer = 90;
  constexpr std::size_t kTracksPerProducer = 6;
  const SyntheticWorkload workload(
      roster, kField, stress_workload(kProducers * kTracksPerProducer), 31);

  TrackManagerFleet::Config cfg;
  cfg.shards = 4;
  cfg.queue_capacity = 64;
  cfg.track.hierarchical = true;  // exercise the tier + index patch path
  TrackManagerFleet fleet(roster, 1.2, kField, 2.0, cfg);
  ASSERT_NE(fleet.hier(), nullptr);

  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kFramesPerProducer; ++i) {
        const TrackId track = p * kTracksPerProducer + (i % kTracksPerProducer);
        ASSERT_TRUE(fleet.submit(workload.frame(track, i / kTracksPerProducer)));
        accepted.fetch_add(1);
      }
    });
  }

  std::size_t resolved = 0;
  std::size_t churned = 0;
  NodeId churn_node = 0;
  bool fail_next = true;
  std::uint64_t service_ticks = 0;
  while (accepted.load() < kProducers * kFramesPerProducer) {
    if (++service_ticks % 2 == 0) {
      if (fail_next ? fleet.fail_node(churn_node)
                    : fleet.revive_node(churn_node)) {
        if (!fail_next) churn_node = (churn_node + 1) % roster.size();
        fail_next = !fail_next;
        ++churned;
      }
    }
    resolved += fleet.tick().size();
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  resolved += fleet.tick().size();
  fleet.flush_rebuilds();

  const TrackManagerFleet::Stats stats = fleet.stats();
  EXPECT_EQ(stats.enqueued, accepted.load());
  EXPECT_EQ(stats.enqueued, stats.shed + stats.frames);
  EXPECT_EQ(stats.frames, resolved);
  EXPECT_EQ(stats.churn_events, churned);
  EXPECT_LE(stats.rebuilds, churned);
  if (churned > 0) EXPECT_GE(stats.rebuilds, 1u);
  EXPECT_LE(stats.tracks, kProducers * kTracksPerProducer);
}

TEST(ServeFleetRace, SubmitWaitBackpressureDrainsWithoutLoss) {
  const Deployment roster = grid_deployment(kField, 9);
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kFramesPerProducer = 40;
  const SyntheticWorkload workload(roster, kField, stress_workload(kProducers), 23);

  TrackManagerFleet::Config cfg;
  cfg.shards = 2;
  cfg.queue_capacity = 4;  // producers must block on the full queue
  TrackManagerFleet fleet(roster, 1.2, kField, 2.0, cfg);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kFramesPerProducer; ++i)
        ASSERT_TRUE(fleet.submit_wait(
            workload.frame(p, static_cast<std::uint64_t>(i))));
    });
  }

  std::size_t resolved = 0;
  while (resolved < kProducers * kFramesPerProducer) {
    resolved += fleet.tick().size();
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();

  const TrackManagerFleet::Stats stats = fleet.stats();
  // Backpressure never sheds and never rejects: every frame resolves.
  EXPECT_EQ(stats.enqueued, kProducers * kFramesPerProducer);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.frames, kProducers * kFramesPerProducer);
  EXPECT_EQ(stats.tracks, kProducers);

  fleet.close();
  EXPECT_FALSE(fleet.submit_wait(workload.frame(0, 999)));
}

TEST(ServeFleetRace, CloseWakesBlockedProducers) {
  const Deployment roster = grid_deployment(kField, 9);
  const SyntheticWorkload workload(roster, kField, stress_workload(2), 29);
  TrackManagerFleet::Config cfg;
  cfg.queue_capacity = 1;
  TrackManagerFleet fleet(roster, 1.2, kField, 2.0, cfg);
  ASSERT_TRUE(fleet.submit(workload.frame(0, 0)));

  std::thread blocked([&] {
    EXPECT_FALSE(fleet.submit_wait(workload.frame(1, 0)));  // queue full
  });
  fleet.close();
  blocked.join();
  EXPECT_EQ(fleet.tick().size(), 1u);  // the queued frame still resolves
}

}  // namespace
}  // namespace fttt
