#include "geometry/grid.hpp"

#include <gtest/gtest.h>

namespace fttt {
namespace {

TEST(UniformGrid, DimensionsCoverExtent) {
  const UniformGrid g({{0.0, 0.0}, {100.0, 50.0}}, 10.0);
  EXPECT_EQ(g.cols(), 10);
  EXPECT_EQ(g.rows(), 5);
  EXPECT_EQ(g.cell_count(), 50u);
}

TEST(UniformGrid, NonDivisibleExtentRoundsUp) {
  const UniformGrid g({{0.0, 0.0}, {95.0, 41.0}}, 10.0);
  EXPECT_EQ(g.cols(), 10);
  EXPECT_EQ(g.rows(), 5);
}

TEST(UniformGrid, InvalidArgumentsThrow) {
  EXPECT_THROW(UniformGrid({{0.0, 0.0}, {10.0, 10.0}}, 0.0), std::invalid_argument);
  EXPECT_THROW(UniformGrid({{0.0, 0.0}, {10.0, 10.0}}, -1.0), std::invalid_argument);
  EXPECT_THROW(UniformGrid({{5.0, 5.0}, {5.0, 10.0}}, 1.0), std::invalid_argument);
}

TEST(UniformGrid, CenterOfFirstCell) {
  const UniformGrid g({{0.0, 0.0}, {10.0, 10.0}}, 2.0);
  EXPECT_EQ(g.center(CellIndex{0, 0}), Vec2(1.0, 1.0));
  EXPECT_EQ(g.center(CellIndex{4, 4}), Vec2(9.0, 9.0));
}

TEST(UniformGrid, LocateRoundTripsThroughCenter) {
  const UniformGrid g({{0.0, 0.0}, {100.0, 100.0}}, 1.0);
  for (std::size_t flat = 0; flat < g.cell_count(); flat += 97) {
    const CellIndex c = g.unflatten(flat);
    EXPECT_EQ(g.locate(g.center(c)), c);
  }
}

TEST(UniformGrid, LocateClampsOutsidePoints) {
  const UniformGrid g({{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  EXPECT_EQ(g.locate({-5.0, -5.0}), (CellIndex{0, 0}));
  EXPECT_EQ(g.locate({50.0, 50.0}), (CellIndex{9, 9}));
}

TEST(UniformGrid, FlattenUnflattenBijection) {
  const UniformGrid g({{0.0, 0.0}, {13.0, 7.0}}, 1.0);
  for (std::size_t flat = 0; flat < g.cell_count(); ++flat)
    EXPECT_EQ(g.flatten(g.unflatten(flat)), flat);
}

TEST(UniformGrid, Neighbors4CountAndBounds) {
  const UniformGrid g({{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  EXPECT_EQ(g.neighbors4({0, 0}).size(), 2u);    // corner
  EXPECT_EQ(g.neighbors4({5, 0}).size(), 3u);    // edge
  EXPECT_EQ(g.neighbors4({5, 5}).size(), 4u);    // interior
  for (const CellIndex n : g.neighbors4({0, 0})) EXPECT_TRUE(g.in_bounds(n));
}

TEST(UniformGrid, InBounds) {
  const UniformGrid g({{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  EXPECT_TRUE(g.in_bounds({0, 0}));
  EXPECT_TRUE(g.in_bounds({9, 9}));
  EXPECT_FALSE(g.in_bounds({-1, 0}));
  EXPECT_FALSE(g.in_bounds({0, 10}));
}

}  // namespace
}  // namespace fttt
