#include "geometry/polyline.hpp"

#include <gtest/gtest.h>

namespace fttt {
namespace {

TEST(Polyline, EmptyConstructionThrows) {
  EXPECT_THROW(Polyline(std::vector<Vec2>{}), std::invalid_argument);
}

TEST(Polyline, SinglePointHasZeroLength) {
  const Polyline p({{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(p.length(), 0.0);
  EXPECT_EQ(p.point_at(0.0), Vec2(3.0, 4.0));
  EXPECT_EQ(p.point_at(100.0), Vec2(3.0, 4.0));
  EXPECT_EQ(p.tangent_at(0.0), Vec2(0.0, 0.0));
}

TEST(Polyline, LengthIsSumOfSegments) {
  const Polyline p({{0.0, 0.0}, {3.0, 4.0}, {3.0, 10.0}});
  EXPECT_DOUBLE_EQ(p.length(), 11.0);
}

TEST(Polyline, PointAtInterpolates) {
  const Polyline p({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}});
  EXPECT_EQ(p.point_at(0.0), Vec2(0.0, 0.0));
  EXPECT_EQ(p.point_at(5.0), Vec2(5.0, 0.0));
  EXPECT_EQ(p.point_at(10.0), Vec2(10.0, 0.0));
  EXPECT_EQ(p.point_at(15.0), Vec2(10.0, 5.0));
  EXPECT_EQ(p.point_at(20.0), Vec2(10.0, 10.0));
}

TEST(Polyline, PointAtClampsOutsideRange) {
  const Polyline p({{0.0, 0.0}, {10.0, 0.0}});
  EXPECT_EQ(p.point_at(-5.0), Vec2(0.0, 0.0));
  EXPECT_EQ(p.point_at(50.0), Vec2(10.0, 0.0));
}

TEST(Polyline, TangentFollowsSegmentDirection) {
  const Polyline p({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}});
  EXPECT_EQ(p.tangent_at(5.0), Vec2(1.0, 0.0));
  EXPECT_EQ(p.tangent_at(15.0), Vec2(0.0, 1.0));
}

TEST(Polyline, DuplicateVerticesAreSkipped) {
  const Polyline p({{0.0, 0.0}, {5.0, 0.0}, {5.0, 0.0}, {10.0, 0.0}});
  EXPECT_DOUBLE_EQ(p.length(), 10.0);
  EXPECT_EQ(p.point_at(7.0), Vec2(7.0, 0.0));
  EXPECT_EQ(p.tangent_at(5.0), Vec2(1.0, 0.0));
}

TEST(Polyline, EndTangentUsesLastRealSegment) {
  const Polyline p({{0.0, 0.0}, {10.0, 0.0}});
  EXPECT_EQ(p.tangent_at(10.0), Vec2(1.0, 0.0));
}

}  // namespace
}  // namespace fttt
