#include "geometry/apollonius.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/random.hpp"
#include "geometry/bisector.hpp"

namespace fttt {
namespace {

/// Points on an Apollonius circle must satisfy the defining ratio.
TEST(Apollonius, CirclePointsSatisfyDistanceRatio) {
  const Vec2 a{-3.0, 1.0};
  const Vec2 b{4.0, -2.0};
  for (double ratio : {0.5, 0.8, 1.25, 2.0, 3.7}) {
    const Circle c = apollonius_circle(a, b, ratio);
    for (int i = 0; i < 36; ++i) {
      const double ang = 2.0 * std::numbers::pi * i / 36.0;
      const Vec2 p = c.center + Vec2{std::cos(ang), std::sin(ang)} * c.radius;
      EXPECT_NEAR(distance(p, a) / distance(p, b), ratio, 1e-9)
          << "ratio " << ratio << " angle " << ang;
    }
  }
}

/// Paper Eq. 4: nodes at (d, 0), (-d, 0); the ratio-C locus (d_m/d_n = C
/// with m the node at (d,0)) has center x = d (C^2+1)/(C^2-1) and radius
/// 2 C d / (C^2 - 1).
TEST(Apollonius, MatchesPaperEquation4) {
  const double d = 5.0;
  const double C = 1.5;
  // Paper Fig. 2 geometry: nodes at (d, 0) and (-d, 0); Eq. 4 describes
  // the circle centred at positive x, i.e. the ratio-C locus measured
  // from the node at (-d, 0) (it encloses the node at (d, 0)).
  const Circle c = apollonius_circle({-d, 0.0}, {d, 0.0}, C);
  EXPECT_NEAR(c.center.x, d * (C * C + 1.0) / (C * C - 1.0), 1e-12);
  EXPECT_NEAR(c.center.y, 0.0, 1e-12);
  EXPECT_NEAR(c.radius, 2.0 * C * d / (C * C - 1.0), 1e-12);
}

TEST(Apollonius, SmallRatioCircleEnclosesA) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 0.0};
  const Circle c = apollonius_circle(a, b, 0.5);
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
}

TEST(Apollonius, LargeRatioCircleEnclosesB) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 0.0};
  const Circle c = apollonius_circle(a, b, 2.0);
  EXPECT_TRUE(c.contains(b));
  EXPECT_FALSE(c.contains(a));
}

TEST(Apollonius, BoundaryCirclesAreAxisymmetricAboutBisector) {
  // For nodes at +/- d on the x axis the two circles of the uncertain
  // boundary mirror each other across the y axis (Definition 2).
  const Vec2 a{-5.0, 0.0};
  const Vec2 b{5.0, 0.0};
  const UncertainBoundary ub = uncertain_boundary(a, b, 1.4);
  EXPECT_NEAR(ub.near_a.center.x, -ub.near_b.center.x, 1e-12);
  EXPECT_NEAR(ub.near_a.center.y, ub.near_b.center.y, 1e-12);
  EXPECT_NEAR(ub.near_a.radius, ub.near_b.radius, 1e-12);
}

TEST(PairRegion, ThreeRegionsAlongAxis) {
  const Vec2 a{-5.0, 0.0};
  const Vec2 b{5.0, 0.0};
  const double C = 1.5;
  EXPECT_EQ(pair_region({-5.0, 0.0}, a, b, C), +1);  // at node a
  EXPECT_EQ(pair_region({5.0, 0.0}, a, b, C), -1);   // at node b
  EXPECT_EQ(pair_region({0.0, 0.0}, a, b, C), 0);    // midpoint: uncertain
}

TEST(PairRegion, BoundaryPointsClassifyDecisively) {
  // Points exactly on the near_a circle satisfy d_a/d_b = 1/C and the
  // classification is the closed region (<=), so they read +1.
  const Vec2 a{-5.0, 0.0};
  const Vec2 b{5.0, 0.0};
  const double C = 1.5;
  const Circle near_a = uncertain_boundary(a, b, C).near_a;
  const Vec2 p = near_a.center + Vec2{near_a.radius, 0.0};
  EXPECT_EQ(pair_region(p, a, b, C), +1);
}

TEST(PairRegion, AntisymmetricUnderNodeSwap) {
  RngStream rng(17);
  const double C = 1.3;
  for (int i = 0; i < 200; ++i) {
    const Vec2 a{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
    const Vec2 b{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
    if (distance(a, b) < 1e-6) continue;
    const Vec2 p{rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0)};
    EXPECT_EQ(pair_region(p, a, b, C), -pair_region(p, b, a, C));
  }
}

TEST(PairRegion, CEqualOneDegeneratesToBisector) {
  RngStream rng(23);
  const Vec2 a{-3.0, 0.0};
  const Vec2 b{3.0, 0.0};
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
    EXPECT_EQ(pair_region(p, a, b, 1.0), bisector_side(p, a, b));
  }
}

TEST(PairRegion, UncertainAreaGrowsWithC) {
  // A point decisively classified under a small C may become uncertain
  // under a bigger C, never the reverse.
  const Vec2 a{-5.0, 0.0};
  const Vec2 b{5.0, 0.0};
  RngStream rng(31);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.uniform(-15.0, 15.0), rng.uniform(-15.0, 15.0)};
    const int small = pair_region(p, a, b, 1.2);
    const int big = pair_region(p, a, b, 2.0);
    if (small == 0) EXPECT_EQ(big, 0);
    if (big != 0) EXPECT_EQ(small, big);
  }
}

TEST(PairRegion, UncertainRegionIsBetweenTheCircles) {
  const Vec2 a{-5.0, 0.0};
  const Vec2 b{5.0, 0.0};
  const double C = 1.5;
  const UncertainBoundary ub = uncertain_boundary(a, b, C);
  RngStream rng(37);
  for (int i = 0; i < 1000; ++i) {
    const Vec2 p{rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0)};
    const int r = pair_region(p, a, b, C);
    const bool inside_near_a = ub.near_a.contains(p);
    const bool inside_near_b = ub.near_b.contains(p);
    if (r == +1) EXPECT_TRUE(inside_near_a);
    if (r == -1) EXPECT_TRUE(inside_near_b);
    if (r == 0) {
      EXPECT_FALSE(inside_near_a);
      EXPECT_FALSE(inside_near_b);
    }
  }
}

TEST(BisectorSide, BasicClassification) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 0.0};
  EXPECT_EQ(bisector_side({1.0, 3.0}, a, b), +1);
  EXPECT_EQ(bisector_side({9.0, -3.0}, a, b), -1);
  EXPECT_EQ(bisector_side({5.0, 7.0}, a, b), 0);
}

TEST(Circle, ContainsAndSignedDistance) {
  const Circle c{{1.0, 1.0}, 2.0};
  EXPECT_TRUE(c.contains({1.0, 1.0}));
  EXPECT_TRUE(c.contains({2.5, 1.0}));
  EXPECT_FALSE(c.contains({3.5, 1.0}));
  EXPECT_DOUBLE_EQ(c.signed_distance({4.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(c.signed_distance({1.0, 1.0}), -2.0);
}

}  // namespace
}  // namespace fttt
