#include "geometry/circle.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fttt {
namespace {

TEST(CircleIntersections, ClassicTwoPointCase) {
  // Unit circles at (0,0) and (1,0): intersections at (0.5, +-sqrt(3)/2).
  const auto pts = circle_intersections({{0.0, 0.0}, 1.0}, {{1.0, 0.0}, 1.0});
  ASSERT_TRUE(pts.has_value());
  EXPECT_NEAR(pts->first.x, 0.5, 1e-12);
  EXPECT_NEAR(pts->first.y, std::sqrt(3.0) / 2.0, 1e-12);
  EXPECT_NEAR(pts->second.x, 0.5, 1e-12);
  EXPECT_NEAR(pts->second.y, -std::sqrt(3.0) / 2.0, 1e-12);
}

TEST(CircleIntersections, PointsLieOnBothCircles) {
  const Circle a{{-2.0, 1.0}, 3.0};
  const Circle b{{1.5, -0.5}, 2.5};
  const auto pts = circle_intersections(a, b);
  ASSERT_TRUE(pts.has_value());
  for (const Vec2 p : {pts->first, pts->second}) {
    EXPECT_NEAR(distance(p, a.center), a.radius, 1e-9);
    EXPECT_NEAR(distance(p, b.center), b.radius, 1e-9);
  }
}

TEST(CircleIntersections, DisjointReturnsNothing) {
  EXPECT_FALSE(circle_intersections({{0.0, 0.0}, 1.0}, {{10.0, 0.0}, 1.0}).has_value());
}

TEST(CircleIntersections, NestedReturnsNothing) {
  EXPECT_FALSE(circle_intersections({{0.0, 0.0}, 5.0}, {{0.5, 0.0}, 1.0}).has_value());
}

TEST(CircleIntersections, ConcentricReturnsNothing) {
  EXPECT_FALSE(circle_intersections({{1.0, 1.0}, 2.0}, {{1.0, 1.0}, 3.0}).has_value());
  EXPECT_FALSE(circle_intersections({{1.0, 1.0}, 2.0}, {{1.0, 1.0}, 2.0}).has_value());
}

TEST(CircleIntersections, ExternallyTangentGivesDoubledPoint) {
  const auto pts = circle_intersections({{0.0, 0.0}, 1.0}, {{3.0, 0.0}, 2.0});
  ASSERT_TRUE(pts.has_value());
  EXPECT_NEAR(distance(pts->first, pts->second), 0.0, 1e-9);
  EXPECT_NEAR(pts->first.x, 1.0, 1e-12);
}

TEST(CircleIntersections, InternallyTangentGivesDoubledPoint) {
  const auto pts = circle_intersections({{0.0, 0.0}, 3.0}, {{1.0, 0.0}, 2.0});
  ASSERT_TRUE(pts.has_value());
  EXPECT_NEAR(distance(pts->first, pts->second), 0.0, 1e-9);
  EXPECT_NEAR(pts->first.x, 3.0, 1e-12);
}

TEST(CircleIntersections, SymmetricInArguments) {
  const Circle a{{0.0, 0.0}, 2.0};
  const Circle b{{2.5, 1.0}, 1.5};
  const auto ab = circle_intersections(a, b);
  const auto ba = circle_intersections(b, a);
  ASSERT_TRUE(ab.has_value());
  ASSERT_TRUE(ba.has_value());
  // Same point set (order may swap).
  const bool same_order = distance(ab->first, ba->first) < 1e-9;
  const bool swapped = distance(ab->first, ba->second) < 1e-9;
  EXPECT_TRUE(same_order || swapped);
}

}  // namespace
}  // namespace fttt
