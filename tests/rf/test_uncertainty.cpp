#include "rf/uncertainty.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "common/stats.hpp"

namespace fttt {
namespace {

TEST(UncertaintyConstant, GreaterThanOne) {
  EXPECT_GT(uncertainty_constant(1.0, 4.0, 6.0), 1.0);
  EXPECT_GT(uncertainty_constant(0.5, 2.0, 1.0), 1.0);
}

TEST(UncertaintyConstant, NoNoiseNoResolutionGivesOne) {
  EXPECT_DOUBLE_EQ(uncertainty_constant(0.0, 4.0, 0.0), 1.0);
}

TEST(UncertaintyConstant, Table1Settings) {
  // beta = 4, sigma = 6, eps = 1 (the paper's defaults):
  // L = ln10/40, C = exp(L + (L*sqrt(2)*6)^2 / 2).
  const double L = std::log(10.0) / 40.0;
  const double expected = std::exp(L * 1.0 + 0.5 * std::pow(L * std::sqrt(2.0) * 6.0, 2.0));
  EXPECT_NEAR(uncertainty_constant(1.0, 4.0, 6.0), expected, 1e-12);
  EXPECT_NEAR(expected, 1.1935, 1e-3);  // sanity anchor
}

TEST(UncertaintyConstant, MonotoneInResolution) {
  double prev = uncertainty_constant(0.0, 4.0, 6.0);
  for (double eps = 0.5; eps <= 3.0; eps += 0.5) {
    const double c = uncertainty_constant(eps, 4.0, 6.0);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(UncertaintyConstant, MonotoneInNoise) {
  double prev = uncertainty_constant(1.0, 4.0, 0.0);
  for (double sigma = 1.0; sigma <= 8.0; sigma += 1.0) {
    const double c = uncertainty_constant(1.0, 4.0, sigma);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(UncertaintyConstant, DecreasesWithBeta) {
  // A steeper path-loss slope separates the pair better: smaller C.
  EXPECT_GT(uncertainty_constant(1.0, 2.0, 6.0), uncertainty_constant(1.0, 4.0, 6.0));
}

TEST(UncertaintyConstant, MatchesMonteCarloExpectation) {
  // C is defined as E[ exp( ln10 (eps - (Xn - Xm)) / (10 beta) ) ] with
  // Xn, Xm ~ N(0, sigma^2) independent (paper Eq. 3). Check the closed
  // form against a direct Monte-Carlo estimate.
  const double eps = 1.0;
  const double beta = 4.0;
  const double sigma = 3.0;
  RngStream rng(2718);
  RunningStats s;
  const double L = std::log(10.0) / (10.0 * beta);
  for (int i = 0; i < 400000; ++i) {
    const double xn = rng.normal(0.0, sigma);
    const double xm = rng.normal(0.0, sigma);
    s.add(std::exp(L * (eps - (xn - xm))));
  }
  EXPECT_NEAR(s.mean(), uncertainty_constant(eps, beta, sigma), 0.002);
}

TEST(UncertainAxisWidth, ZeroAtCOne) {
  EXPECT_DOUBLE_EQ(uncertain_axis_width(5.0, 1.0), 0.0);
}

TEST(UncertainAxisWidth, GrowsWithCAndSeparation) {
  EXPECT_LT(uncertain_axis_width(5.0, 1.2), uncertain_axis_width(5.0, 1.6));
  EXPECT_LT(uncertain_axis_width(5.0, 1.2), uncertain_axis_width(10.0, 1.2));
}

TEST(UncertainAxisWidth, ClosedForm) {
  // width = 2 d (C-1)/(C+1); d = 6, C = 2 -> 4.
  EXPECT_DOUBLE_EQ(uncertain_axis_width(6.0, 2.0), 4.0);
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(normal_quantile(0.999), 3.090232, 1e-5);
  EXPECT_NEAR(normal_quantile(0.001), -3.090232, 1e-5);
}

TEST(NormalQuantile, InverseOfErfBasedCdf) {
  for (double p : {0.01, 0.1, 0.3, 0.6, 0.9, 0.99}) {
    const double z = normal_quantile(p);
    const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
    EXPECT_NEAR(cdf, p, 1e-8);
  }
}

TEST(CalibratedConstant, WidensWithKAndSigma) {
  const double c3 = calibrated_uncertainty_constant(1.0, 4.0, 6.0, 3);
  const double c9 = calibrated_uncertainty_constant(1.0, 4.0, 6.0, 9);
  EXPECT_GT(c9, c3);
  EXPECT_GT(c3, uncertainty_constant(1.0, 4.0, 6.0));  // wider than Eq. 3
  EXPECT_GT(calibrated_uncertainty_constant(1.0, 4.0, 8.0, 5),
            calibrated_uncertainty_constant(1.0, 4.0, 4.0, 5));
}

TEST(CalibratedConstant, ZeroSigmaFallsBackToEq3) {
  EXPECT_DOUBLE_EQ(calibrated_uncertainty_constant(1.0, 4.0, 0.0, 5),
                   uncertainty_constant(1.0, 4.0, 0.0));
}

TEST(CalibratedConstant, BoundaryFlipProbabilityMatchesTarget) {
  // At the calibrated boundary the per-instant flip probability q* must
  // satisfy 1 - (1-q)^k - q^k = p_capture. Reconstruct q from C and check.
  const double eps = 1.0;
  const double beta = 4.0;
  const double sigma = 6.0;
  const std::size_t k = 5;
  const double C = calibrated_uncertainty_constant(eps, beta, sigma, k, 0.5);
  const double gap = 10.0 * beta * std::log10(C);
  const double q = 0.5 * std::erfc((gap - eps) / (std::sqrt(2.0) * sigma) / std::sqrt(2.0));
  const double capture = 1.0 - std::pow(1.0 - q, 5.0) - std::pow(q, 5.0);
  EXPECT_NEAR(capture, 0.5, 1e-6);
}

TEST(BoundedNoiseAmplitude, InverseOfRatioFormula) {
  // A = 5 beta log10(C)  <=>  C = 10^(2A / (10 beta)).
  const double A = bounded_noise_amplitude(1.5, 4.0);
  EXPECT_NEAR(std::pow(10.0, 2.0 * A / 40.0), 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(bounded_noise_amplitude(1.0, 4.0), 0.0);
}

}  // namespace
}  // namespace fttt
