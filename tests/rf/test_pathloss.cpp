#include "rf/pathloss.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace fttt {
namespace {

TEST(PathLoss, ReferencePowerAtD0) {
  const PathLossModel m{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  EXPECT_DOUBLE_EQ(m.mean_rss(1.0), -40.0);
}

TEST(PathLoss, TenPerDecadeTimesBeta) {
  const PathLossModel m{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 0.0, .d0 = 1.0};
  EXPECT_DOUBLE_EQ(m.mean_rss(10.0), -80.0);   // one decade: -10*beta dB
  EXPECT_DOUBLE_EQ(m.mean_rss(100.0), -120.0); // two decades
}

TEST(PathLoss, MonotonicallyDecreasingWithDistance) {
  const PathLossModel m{.ref_power_dbm = -40.0, .beta = 3.0, .sigma = 0.0, .d0 = 1.0};
  double prev = m.mean_rss(1.0);
  for (double d = 2.0; d <= 100.0; d += 1.0) {
    const double cur = m.mean_rss(d);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(PathLoss, ClampsInsideReferenceDistance) {
  const PathLossModel m{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 0.0, .d0 = 1.0};
  EXPECT_DOUBLE_EQ(m.mean_rss(0.1), m.mean_rss(1.0));
  EXPECT_DOUBLE_EQ(m.mean_rss(0.0), m.mean_rss(1.0));
}

TEST(PathLoss, SampleNoiseStatistics) {
  const PathLossModel m{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  RngStream rng(55);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(m.sample_rss(20.0, rng));
  EXPECT_NEAR(s.mean(), m.mean_rss(20.0), 0.1);
  EXPECT_NEAR(s.stddev(), 6.0, 0.1);
}

TEST(PathLoss, ZeroSigmaIsDeterministic) {
  const PathLossModel m{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 0.0, .d0 = 1.0};
  RngStream rng(55);
  EXPECT_DOUBLE_EQ(m.sample_rss(20.0, rng), m.mean_rss(20.0));
}

TEST(PathLoss, InvertRssRoundTrips) {
  const PathLossModel m{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 0.0, .d0 = 1.0};
  for (double d : {1.0, 5.0, 17.0, 40.0, 90.0})
    EXPECT_NEAR(m.invert_rss(m.mean_rss(d)), d, 1e-9);
}

TEST(PathLoss, BoundedNoiseStaysWithinAmplitude) {
  PathLossModel m{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  m.noise = NoiseKind::kBounded;
  m.bounded_amplitude = 2.0;
  RngStream rng(66);
  for (int i = 0; i < 10000; ++i) {
    const double x = m.sample_rss(20.0, rng) - m.mean_rss(20.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 2.0);
  }
}

TEST(PathLoss, BoundedNoisePairNeverFlipsOutsideAnnulus) {
  // Two samples at mean gap > 2A can never reverse order — the defining
  // property of the bounded channel.
  PathLossModel m{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  m.noise = NoiseKind::kBounded;
  m.bounded_amplitude = 1.5;
  RngStream rng(67);
  const double d_near = 10.0;
  const double d_far = 20.0;  // gap = 40*log10(2) ~ 12 dB >> 2A = 3 dB
  for (int i = 0; i < 5000; ++i)
    EXPECT_GT(m.sample_rss(d_near, rng), m.sample_rss(d_far, rng));
}

TEST(PathLoss, BetaControlsDecaySlope) {
  const PathLossModel fs{.ref_power_dbm = 0.0, .beta = 2.0, .sigma = 0.0, .d0 = 1.0};
  const PathLossModel urban{.ref_power_dbm = 0.0, .beta = 4.0, .sigma = 0.0, .d0 = 1.0};
  EXPECT_GT(fs.mean_rss(50.0), urban.mean_rss(50.0));
}

}  // namespace
}  // namespace fttt
