#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace fttt {
namespace {

TEST(ErrorMetrics, ZeroForPerfectEstimates) {
  const std::vector<Vec2> path{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  const ErrorMetrics m = error_metrics(path, path);
  EXPECT_DOUBLE_EQ(m.mean, 0.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_DOUBLE_EQ(m.max, 0.0);
}

TEST(ErrorMetrics, KnownValues) {
  const std::vector<Vec2> truth{{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}};
  const std::vector<Vec2> est{{1.0, 0.0}, {0.0, 3.0}, {0.0, 0.0}, {4.0, 0.0}};
  const ErrorMetrics m = error_metrics(est, truth);
  EXPECT_DOUBLE_EQ(m.mean, 2.0);
  EXPECT_DOUBLE_EQ(m.max, 4.0);
  EXPECT_NEAR(m.rmse, std::sqrt((1.0 + 9.0 + 0.0 + 16.0) / 4.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.p50, 2.0);  // sorted errors 0,1,3,4 -> midpoint 2
}

TEST(ErrorMetrics, LengthMismatchThrows) {
  const std::vector<Vec2> a{{0.0, 0.0}};
  const std::vector<Vec2> b{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_THROW(error_metrics(a, b), std::invalid_argument);
}

TEST(ErrorMetrics, EmptyInputIsZeros) {
  const ErrorMetrics m = error_metrics({}, {});
  EXPECT_DOUBLE_EQ(m.mean, 0.0);
  EXPECT_DOUBLE_EQ(m.p95, 0.0);
}

TEST(SmoothnessMetrics, StraightLineHasNoTurnEnergy) {
  std::vector<Vec2> path;
  for (int i = 0; i < 10; ++i) path.push_back({static_cast<double>(i), 0.0});
  const SmoothnessMetrics m = smoothness_metrics(path);
  EXPECT_DOUBLE_EQ(m.mean_jump, 1.0);
  EXPECT_DOUBLE_EQ(m.jump_stddev, 0.0);
  EXPECT_DOUBLE_EQ(m.turn_energy, 0.0);
  EXPECT_DOUBLE_EQ(m.stationary_fraction, 0.0);
}

TEST(SmoothnessMetrics, ZigzagHasHighTurnEnergy) {
  std::vector<Vec2> zigzag;
  for (int i = 0; i < 10; ++i)
    zigzag.push_back({static_cast<double>(i), i % 2 == 0 ? 0.0 : 1.0});
  std::vector<Vec2> straight;
  for (int i = 0; i < 10; ++i) straight.push_back({static_cast<double>(i), 0.0});
  EXPECT_GT(smoothness_metrics(zigzag).turn_energy,
            smoothness_metrics(straight).turn_energy);
}

TEST(SmoothnessMetrics, RightAngleTurn) {
  const std::vector<Vec2> path{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}};
  const SmoothnessMetrics m = smoothness_metrics(path);
  const double right_angle = std::numbers::pi / 2.0;
  EXPECT_NEAR(m.turn_energy, right_angle * right_angle, 1e-12);
}

TEST(SmoothnessMetrics, StationaryStepsCounted) {
  const std::vector<Vec2> path{{0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}};
  const SmoothnessMetrics m = smoothness_metrics(path);
  EXPECT_NEAR(m.stationary_fraction, 2.0 / 3.0, 1e-12);
}

TEST(SmoothnessMetrics, ShortPathsAreZero) {
  EXPECT_DOUBLE_EQ(smoothness_metrics({}).mean_jump, 0.0);
  const std::vector<Vec2> one{{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(smoothness_metrics(one).mean_jump, 0.0);
}

TEST(ChangeCount, CountsTransitions) {
  const std::vector<std::uint32_t> ids{1, 1, 2, 2, 2, 3, 1};
  EXPECT_EQ(change_count(ids), 3u);
  EXPECT_EQ(change_count(std::vector<std::uint32_t>{}), 0u);
  EXPECT_EQ(change_count(std::vector<std::uint32_t>{5}), 0u);
}

}  // namespace
}  // namespace fttt
