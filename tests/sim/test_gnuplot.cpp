#include "sim/gnuplot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fttt {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class GnuplotTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir();
  void TearDown() override {
    std::remove((dir_ + "/t.dat").c_str());
    std::remove((dir_ + "/t.gp").c_str());
  }
};

TEST_F(GnuplotTest, WritesDataBlocksAndScript) {
  GnuplotExporter gp("t");
  gp.set_labels("time (s)", "error (m)");
  gp.add_series("FTTT", {0.0, 1.0, 2.0}, {3.0, 2.0, 1.0});
  gp.add_series("PM", {0.0, 1.0}, {5.0, 4.0});
  gp.write(dir_);

  const std::string dat = slurp(dir_ + "/t.dat");
  EXPECT_NE(dat.find("# FTTT"), std::string::npos);
  EXPECT_NE(dat.find("# PM"), std::string::npos);
  EXPECT_NE(dat.find("0 3"), std::string::npos);
  EXPECT_NE(dat.find("\n\n\n"), std::string::npos);  // block separator

  const std::string script = slurp(dir_ + "/t.gp");
  EXPECT_NE(script.find("set xlabel 'time (s)'"), std::string::npos);
  EXPECT_NE(script.find("index 0"), std::string::npos);
  EXPECT_NE(script.find("index 1"), std::string::npos);
  EXPECT_NE(script.find("title 'FTTT'"), std::string::npos);
}

TEST_F(GnuplotTest, ScatterUsesPoints) {
  GnuplotExporter gp("t");
  gp.add_scatter("estimates", {1.0}, {2.0});
  gp.write(dir_);
  EXPECT_NE(slurp(dir_ + "/t.gp").find("with points"), std::string::npos);
}

TEST_F(GnuplotTest, SeriesStructValidation) {
  GnuplotExporter gp("t");
  EXPECT_THROW(gp.add_series("bad", {1.0, 2.0}, {1.0}), std::invalid_argument);
  Series s;
  s.label = "ok";
  s.push(1.0, 2.0);
  gp.add_series(s);
  EXPECT_EQ(gp.series_count(), 1u);
}

TEST(Gnuplot, EmptyNameRejected) {
  EXPECT_THROW(GnuplotExporter(""), std::invalid_argument);
}

TEST(Gnuplot, UnwritableDirThrows) {
  GnuplotExporter gp("t");
  gp.add_series("s", {1.0}, {1.0});
  EXPECT_THROW(gp.write("/nonexistent-dir-xyz"), std::runtime_error);
}

}  // namespace
}  // namespace fttt
