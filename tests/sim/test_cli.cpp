#include "sim/cli.hpp"

#include <gtest/gtest.h>

namespace fttt {
namespace {

CliOptions must_parse(const std::vector<std::string>& args) {
  const CliParseResult r = parse_cli(args);
  EXPECT_TRUE(r.ok()) << r.error;
  return r.options.value_or(CliOptions{});
}

TEST(Cli, EmptyArgsGiveDefaults) {
  const CliOptions opt = must_parse({});
  EXPECT_EQ(opt.scenario.sensor_count, 10u);
  EXPECT_EQ(opt.methods, std::vector<Method>{Method::kFttt});
  EXPECT_EQ(opt.trials, 10u);
  EXPECT_FALSE(opt.csv_path.has_value());
  EXPECT_FALSE(opt.want_help);
}

TEST(Cli, ScenarioFlags) {
  const CliOptions opt = must_parse(
      {"--sensors", "25", "--deployment", "grid", "--field", "200", "60",
       "--range", "50", "--eps", "2.5", "--beta", "3", "--sigma", "4",
       "--channel", "bounded", "--k", "7", "--rate", "20", "--period", "0.25",
       "--dropout", "0.1", "--speed", "2", "4", "--duration", "30",
       "--grid-cell", "0.5", "--seed", "99"});
  const ScenarioConfig& cfg = opt.scenario;
  EXPECT_EQ(cfg.sensor_count, 25u);
  EXPECT_EQ(cfg.deployment, DeploymentKind::kGrid);
  EXPECT_DOUBLE_EQ(cfg.field.width(), 200.0);
  EXPECT_DOUBLE_EQ(cfg.field.height(), 60.0);
  EXPECT_DOUBLE_EQ(cfg.sensing_range, 50.0);
  EXPECT_DOUBLE_EQ(cfg.eps, 2.5);
  EXPECT_DOUBLE_EQ(cfg.model.beta, 3.0);
  EXPECT_DOUBLE_EQ(cfg.model.sigma, 4.0);
  EXPECT_EQ(cfg.channel, Channel::kBounded);
  EXPECT_EQ(cfg.samples_per_group, 7u);
  EXPECT_DOUBLE_EQ(cfg.sample_rate, 20.0);
  EXPECT_DOUBLE_EQ(cfg.localization_period, 0.25);
  EXPECT_DOUBLE_EQ(cfg.dropout_probability, 0.1);
  EXPECT_DOUBLE_EQ(cfg.v_min, 2.0);
  EXPECT_DOUBLE_EQ(cfg.v_max, 4.0);
  EXPECT_DOUBLE_EQ(cfg.duration, 30.0);
  EXPECT_DOUBLE_EQ(cfg.grid_cell, 0.5);
  EXPECT_EQ(cfg.seed, 99u);
}

TEST(Cli, TraceKinds) {
  EXPECT_EQ(must_parse({"--trace", "waypoint"}).scenario.trace,
            TraceKind::kRandomWaypoint);
  EXPECT_EQ(must_parse({"--trace", "ushape"}).scenario.trace, TraceKind::kUShape);
  EXPECT_EQ(must_parse({"--trace", "gauss-markov"}).scenario.trace,
            TraceKind::kGaussMarkov);
  EXPECT_FALSE(parse_cli({"--trace", "teleport"}).ok());
}

TEST(Cli, ObservabilityFlags) {
  const CliOptions opt = must_parse(
      {"--metrics", "/tmp/m.json", "--trace-out", "/tmp/t.trace.json"});
  EXPECT_EQ(opt.metrics_path.value(), "/tmp/m.json");
  EXPECT_EQ(opt.trace_path.value(), "/tmp/t.trace.json");
  EXPECT_FALSE(must_parse({}).metrics_path.has_value());
  EXPECT_FALSE(must_parse({}).trace_path.has_value());
  EXPECT_FALSE(parse_cli({"--metrics"}).ok());
  EXPECT_FALSE(parse_cli({"--trace-out"}).ok());
}

TEST(Cli, TraceFlagSniffsJsonOperandAsOutputPath) {
  // A ".json" operand means "Chrome-trace output here"; mobility kinds
  // keep working; anything else is still rejected.
  const CliOptions opt = must_parse({"--trace", "out/run.trace.json"});
  EXPECT_EQ(opt.trace_path.value(), "out/run.trace.json");
  EXPECT_EQ(opt.scenario.trace, TraceKind::kRandomWaypoint);  // untouched

  const CliOptions both =
      must_parse({"--trace", "ushape", "--trace", "spans.json"});
  EXPECT_EQ(both.scenario.trace, TraceKind::kUShape);
  EXPECT_EQ(both.trace_path.value(), "spans.json");

  EXPECT_FALSE(parse_cli({"--trace", "spans.txt"}).ok());
  EXPECT_FALSE(parse_cli({"--trace", ".json"}).ok());
}

TEST(Cli, ToggleFlags) {
  const CliOptions opt = must_parse({"--no-calibrate-c", "--moving-group"});
  EXPECT_FALSE(opt.scenario.calibrate_C);
  EXPECT_FALSE(opt.scenario.freeze_group);
}

TEST(Cli, HierarchicalMatchingFlag) {
  EXPECT_FALSE(must_parse({}).scenario.hierarchical_matching);
  EXPECT_TRUE(must_parse({"--hier"}).scenario.hierarchical_matching);
}

TEST(Cli, MissingPolicy) {
  EXPECT_EQ(must_parse({"--missing", "smaller"}).scenario.missing,
            MissingPolicy::kMissingReadsSmaller);
  EXPECT_EQ(must_parse({"--missing", "unknown"}).scenario.missing,
            MissingPolicy::kMissingUnknown);
  EXPECT_FALSE(parse_cli({"--missing", "teleport"}).ok());
}

TEST(Cli, RunFlags) {
  const CliOptions opt = must_parse(
      {"--methods", "fttt,pm,mle", "--trials", "5", "--csv", "/tmp/x.csv"});
  ASSERT_EQ(opt.methods.size(), 3u);
  EXPECT_EQ(opt.methods[0], Method::kFttt);
  EXPECT_EQ(opt.methods[1], Method::kPathMatching);
  EXPECT_EQ(opt.methods[2], Method::kDirectMle);
  EXPECT_EQ(opt.trials, 5u);
  EXPECT_EQ(opt.csv_path.value(), "/tmp/x.csv");
}

TEST(Cli, ServeFlagsDefaultOffAndParse) {
  const CliOptions off = must_parse({});
  EXPECT_FALSE(off.serve.enabled);
  EXPECT_EQ(off.serve.shards, 4u);
  EXPECT_EQ(off.serve.queue_capacity, 4096u);
  EXPECT_EQ(off.serve.churn_period, 0u);  // no churn unless asked

  const CliOptions opt = must_parse(
      {"--serve", "--serve-shards", "8", "--serve-tracks", "128",
       "--serve-ticks", "500", "--serve-queue", "1024", "--serve-churn", "25"});
  EXPECT_TRUE(opt.serve.enabled);
  EXPECT_EQ(opt.serve.shards, 8u);
  EXPECT_EQ(opt.serve.tracks, 128u);
  EXPECT_EQ(opt.serve.ticks, 500u);
  EXPECT_EQ(opt.serve.queue_capacity, 1024u);
  EXPECT_EQ(opt.serve.churn_period, 25u);
}

TEST(Cli, ServeFlagsRejectGarbage) {
  EXPECT_FALSE(parse_cli({"--serve-shards", "0"}).ok());
  EXPECT_FALSE(parse_cli({"--serve-tracks", "0"}).ok());
  EXPECT_FALSE(parse_cli({"--serve-ticks", "none"}).ok());
  EXPECT_FALSE(parse_cli({"--serve-queue", "0"}).ok());
  EXPECT_FALSE(parse_cli({"--serve-queue"}).ok());
  EXPECT_EQ(must_parse({"--serve-churn", "0"}).serve.churn_period, 0u);
}

TEST(Cli, HelpShortCircuits) {
  const CliOptions opt = must_parse({"--help", "--bogus-after-help-ignored"});
  EXPECT_TRUE(opt.want_help);
  EXPECT_FALSE(cli_usage().empty());
}

TEST(Cli, UnknownFlagFails) {
  const CliParseResult r = parse_cli({"--bogus"});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("--bogus"), std::string::npos);
}

TEST(Cli, MissingOperandFails) {
  EXPECT_FALSE(parse_cli({"--sensors"}).ok());
  EXPECT_FALSE(parse_cli({"--speed", "2"}).ok());
}

TEST(Cli, RejectsGarbageValues) {
  EXPECT_FALSE(parse_cli({"--sensors", "many"}).ok());
  EXPECT_FALSE(parse_cli({"--eps", "1.5x"}).ok());
  EXPECT_FALSE(parse_cli({"--dropout", "1.5"}).ok());
  EXPECT_FALSE(parse_cli({"--speed", "5", "2"}).ok());
  EXPECT_FALSE(parse_cli({"--k", "0"}).ok());
  EXPECT_FALSE(parse_cli({"--trials", "0"}).ok());
  EXPECT_FALSE(parse_cli({"--field", "-10", "10"}).ok());
  EXPECT_FALSE(parse_cli({"--deployment", "hexagon"}).ok());
  EXPECT_FALSE(parse_cli({"--channel", "laplace"}).ok());
  EXPECT_FALSE(parse_cli({"--methods", "fttt,bogus"}).ok());
}

TEST(ParseMethodList, AllNamesAndFailures) {
  const auto all = parse_method_list("fttt,fttt-ext,pm,mle");
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->size(), 4u);
  EXPECT_FALSE(parse_method_list("").has_value());
  EXPECT_FALSE(parse_method_list("kalman").has_value());
}

}  // namespace
}  // namespace fttt
