#include "sim/montecarlo.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace fttt {
namespace {

ScenarioConfig quick_config() {
  ScenarioConfig cfg;
  cfg.sensor_count = 8;
  cfg.duration = 6.0;
  cfg.grid_cell = 2.0;
  return cfg;
}

TEST(MonteCarlo, AggregatesAllTrials) {
  const std::array<Method, 2> methods{Method::kFttt, Method::kDirectMle};
  const auto summary = monte_carlo(quick_config(), methods, 4);
  ASSERT_EQ(summary.size(), 2u);
  const std::size_t epochs = static_cast<std::size_t>(6.0 / 0.5);
  for (const auto& s : summary) {
    EXPECT_EQ(s.pooled.count(), 4 * epochs);
    EXPECT_EQ(s.trial_means.count(), 4u);
    EXPECT_GT(s.mean_error(), 0.0);
  }
}

TEST(MonteCarlo, DeterministicAcrossThreadCounts) {
  const std::array<Method, 1> methods{Method::kFttt};
  ThreadPool one(1);
  ThreadPool many(8);
  const auto a = monte_carlo(quick_config(), methods, 4, one);
  const auto b = monte_carlo(quick_config(), methods, 4, many);
  EXPECT_DOUBLE_EQ(a[0].mean_error(), b[0].mean_error());
  EXPECT_DOUBLE_EQ(a[0].stddev_error(), b[0].stddev_error());
  EXPECT_DOUBLE_EQ(a[0].trial_means.mean(), b[0].trial_means.mean());
}

TEST(MonteCarlo, TrialMeansWithinPooledRange) {
  const std::array<Method, 1> methods{Method::kFttt};
  const auto s = monte_carlo(quick_config(), methods, 3);
  EXPECT_GE(s[0].trial_means.min(), s[0].pooled.min());
  EXPECT_LE(s[0].trial_means.max(), s[0].pooled.max());
}

TEST(MonteCarlo, ZeroEpochTrialsDoNotPoisonTrialMeans) {
  // duration < localization period: every trial has zero epochs, so no
  // error samples exist. The vacuous per-trial means must not enter the
  // trial_means distribution (regression: they used to, dragging the
  // distribution toward a spurious value).
  ScenarioConfig cfg = quick_config();
  cfg.duration = 0.1;
  const std::array<Method, 1> methods{Method::kFttt};
  const auto s = monte_carlo(cfg, methods, 3);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].pooled.count(), 0u);
  EXPECT_EQ(s[0].trial_means.count(), 0u);
  EXPECT_FALSE(std::isnan(s[0].mean_error()));
  EXPECT_FALSE(std::isnan(s[0].trial_means.mean()));
}

TEST(MonteCarlo, UsesFaceMapCacheAcrossTrials) {
  ScenarioConfig cfg = quick_config();
  cfg.deployment = DeploymentKind::kGrid;  // trial-invariant keys
  const std::array<Method, 1> methods{Method::kFttt};
  FaceMapCache cache;
  monte_carlo(cfg, methods, 4, ThreadPool::global(), &cache);
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().hits, 3u);
}

// Pins the montecarlo.hpp cache guidance: under kRandom every trial
// draws a unique deployment, so the cache never hits — it only churns —
// and supplying one must not perturb the statistics either.
TEST(MonteCarlo, RandomDeploymentsNeverHitTheCache) {
  ScenarioConfig cfg = quick_config();
  cfg.deployment = DeploymentKind::kRandom;
  const std::array<Method, 1> methods{Method::kFttt};
  FaceMapCache cache;
  const auto cached = monte_carlo(cfg, methods, 4, ThreadPool::global(), &cache);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 4u);  // one cold build per trial
  EXPECT_EQ(cache.stats().hit_rate(), 0.0);
  const auto uncached = monte_carlo(cfg, methods, 4, ThreadPool::global(), nullptr);
  EXPECT_EQ(cached[0].pooled.count(), uncached[0].pooled.count());
  EXPECT_EQ(cached[0].pooled.mean(), uncached[0].pooled.mean());
  EXPECT_EQ(cached[0].trial_means.mean(), uncached[0].trial_means.mean());
}

TEST(MonteCarlo, NullCacheStillRuns) {
  const std::array<Method, 1> methods{Method::kFttt};
  const auto s = monte_carlo(quick_config(), methods, 2, ThreadPool::global(), nullptr);
  EXPECT_GT(s[0].pooled.count(), 0u);
}

TEST(MonteCarlo, MethodOrderPreserved) {
  const std::array<Method, 3> methods{Method::kDirectMle, Method::kFttt,
                                      Method::kPathMatching};
  const auto s = monte_carlo(quick_config(), methods, 2);
  EXPECT_EQ(s[0].method, Method::kDirectMle);
  EXPECT_EQ(s[1].method, Method::kFttt);
  EXPECT_EQ(s[2].method, Method::kPathMatching);
}

}  // namespace
}  // namespace fttt
