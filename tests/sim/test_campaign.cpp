#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace fttt {
namespace {

/// Small but non-trivial campaign: two densities, two counts, enough
/// trials to exercise wave boundaries (wave_size 3 does not divide 7).
CampaignConfig quick_campaign() {
  CampaignConfig cfg;
  cfg.base.duration = 4.0;
  cfg.base.grid_cell = 2.0;
  cfg.densities = {0.001, 0.002};
  cfg.sensor_counts = {8, 10};
  cfg.trials_per_cell = 7;
  cfg.wave_size = 3;
  cfg.methods = {Method::kFttt, Method::kDirectMle};
  return cfg;
}

void expect_bit_equal(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

// The header's equivalence contract, per (method, density, N) cell:
// under kFixed every cell's summaries are bit-identical to a serial
// monte_carlo of the cell's scenario with per-trial map builds.
TEST(Campaign, BitIdenticalToSerialMonteCarloPerCell) {
  const CampaignConfig cfg = quick_campaign();
  ThreadPool single(1);
  const CampaignResult result = run_campaign(cfg, single);
  ASSERT_EQ(result.cells.size(), 4u);
  ASSERT_EQ(result.trials, 4u * cfg.trials_per_cell);
  for (const CampaignCell& cell : result.cells) {
    const std::vector<MonteCarloSummary> reference =
        monte_carlo(cell.scenario, cfg.methods, cfg.trials_per_cell, single, nullptr);
    ASSERT_EQ(cell.summaries.size(), reference.size());
    for (std::size_t m = 0; m < reference.size(); ++m) {
      EXPECT_EQ(cell.summaries[m].method, reference[m].method);
      expect_bit_equal(cell.summaries[m].pooled, reference[m].pooled);
      expect_bit_equal(cell.summaries[m].trial_means, reference[m].trial_means);
    }
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  const CampaignConfig cfg = quick_campaign();
  ThreadPool one(1);
  ThreadPool four(4);
  ThreadPool eight(8);
  const CampaignResult a = run_campaign(cfg, one);
  const CampaignResult b = run_campaign(cfg, four);
  const CampaignResult c = run_campaign(cfg, eight);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  ASSERT_EQ(a.cells.size(), c.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    for (std::size_t m = 0; m < a.cells[i].summaries.size(); ++m) {
      expect_bit_equal(a.cells[i].summaries[m].pooled, b.cells[i].summaries[m].pooled);
      expect_bit_equal(a.cells[i].summaries[m].pooled, c.cells[i].summaries[m].pooled);
      expect_bit_equal(a.cells[i].summaries[m].trial_means,
                       b.cells[i].summaries[m].trial_means);
      expect_bit_equal(a.cells[i].summaries[m].trial_means,
                       c.cells[i].summaries[m].trial_means);
    }
  }
}

TEST(Campaign, CellScenarioHasDensityDerivedField) {
  const CampaignConfig cfg = quick_campaign();
  const ScenarioConfig cell = campaign_cell_scenario(cfg, 0.002, 8);
  EXPECT_EQ(cell.sensor_count, 8u);
  EXPECT_EQ(cell.deployment, DeploymentKind::kRandom);
  const double area = cell.field.width() * cell.field.height();
  EXPECT_NEAR(area, 8.0 / 0.002, 1e-6);
  EXPECT_NEAR(cell.field.width(), cell.field.height(), 1e-12);  // square
}

TEST(Campaign, ResultGridIndexing) {
  const CampaignConfig cfg = quick_campaign();
  ThreadPool single(1);
  const CampaignResult result = run_campaign(cfg, single);
  for (std::size_t di = 0; di < cfg.densities.size(); ++di)
    for (std::size_t ni = 0; ni < cfg.sensor_counts.size(); ++ni) {
      const CampaignCell& cell = result.at(di, ni);
      EXPECT_EQ(cell.density, cfg.densities[di]);
      EXPECT_EQ(cell.sensor_count, cfg.sensor_counts[ni]);
    }
}

TEST(Campaign, PoissonCountsStillDeterministic) {
  CampaignConfig cfg = quick_campaign();
  cfg.count_model = CountModel::kPoisson;
  cfg.densities = {0.001};
  cfg.sensor_counts = {8};
  ThreadPool one(1);
  ThreadPool four(4);
  const CampaignResult a = run_campaign(cfg, one);
  const CampaignResult b = run_campaign(cfg, four);
  for (std::size_t m = 0; m < a.cells[0].summaries.size(); ++m)
    expect_bit_equal(a.cells[0].summaries[m].pooled, b.cells[0].summaries[m].pooled);
}

TEST(Campaign, ValidationThrows) {
  ThreadPool single(1);
  {
    CampaignConfig cfg = quick_campaign();
    cfg.densities.clear();
    EXPECT_THROW(run_campaign(cfg, single), std::invalid_argument);
  }
  {
    CampaignConfig cfg = quick_campaign();
    cfg.sensor_counts.clear();
    EXPECT_THROW(run_campaign(cfg, single), std::invalid_argument);
  }
  {
    CampaignConfig cfg = quick_campaign();
    cfg.methods.clear();
    EXPECT_THROW(run_campaign(cfg, single), std::invalid_argument);
  }
  {
    CampaignConfig cfg = quick_campaign();
    cfg.trials_per_cell = 0;
    EXPECT_THROW(run_campaign(cfg, single), std::invalid_argument);
  }
  {
    CampaignConfig cfg = quick_campaign();
    cfg.wave_size = 0;
    EXPECT_THROW(run_campaign(cfg, single), std::invalid_argument);
  }
  {
    CampaignConfig cfg = quick_campaign();
    cfg.densities = {0.0};
    EXPECT_THROW(run_campaign(cfg, single), std::invalid_argument);
  }
}

}  // namespace
}  // namespace fttt
