#include "sim/report.hpp"

#include <gtest/gtest.h>

namespace fttt {
namespace {

TEST(MarkdownEscape, EscapesTableBreakers) {
  EXPECT_EQ(markdown_escape("a|b"), "a\\|b");
  EXPECT_EQ(markdown_escape("line1\nline2"), "line1 line2");
  EXPECT_EQ(markdown_escape("plain"), "plain");
}

TEST(MarkdownScenario, MentionsEveryKeyParameter) {
  ScenarioConfig cfg;
  cfg.sensor_count = 17;
  cfg.channel = Channel::kBounded;
  cfg.samples_per_group = 7;
  cfg.dropout_probability = 0.25;
  cfg.missing = MissingPolicy::kMissingUnknown;
  const std::string md = markdown_scenario(cfg);
  EXPECT_NE(md.find("17"), std::string::npos);
  EXPECT_NE(md.find("bounded"), std::string::npos);
  EXPECT_NE(md.find("k = 7"), std::string::npos);
  EXPECT_NE(md.find("0.25"), std::string::npos);
  EXPECT_NE(md.find("'*'"), std::string::npos);
}

TEST(MarkdownScenario, NamesEachTraceKind) {
  ScenarioConfig cfg;
  cfg.trace = TraceKind::kUShape;
  EXPECT_NE(markdown_scenario(cfg).find("U-shape"), std::string::npos);
  cfg.trace = TraceKind::kGaussMarkov;
  EXPECT_NE(markdown_scenario(cfg).find("Gauss-Markov"), std::string::npos);
}

TEST(MarkdownSummaryTable, OneRowPerMethodWithHeader) {
  std::vector<MonteCarloSummary> summaries(2);
  summaries[0].method = Method::kFttt;
  summaries[0].pooled.add(1.0);
  summaries[0].pooled.add(3.0);
  summaries[0].trial_means.add(2.0);
  summaries[1].method = Method::kDirectMle;
  summaries[1].pooled.add(5.0);
  summaries[1].trial_means.add(5.0);
  const std::string md = markdown_summary_table(summaries);
  EXPECT_NE(md.find("| method |"), std::string::npos);
  EXPECT_NE(md.find("| FTTT | 2.000 |"), std::string::npos);
  EXPECT_NE(md.find("| DirectMLE | 5.000 |"), std::string::npos);
  // Header + separator + 2 rows = 4 lines.
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 4);
}

TEST(MarkdownSection, ComposesHeadingBlockAndTable) {
  ScenarioConfig cfg;
  std::vector<MonteCarloSummary> summaries(1);
  summaries[0].method = Method::kFttt;
  summaries[0].pooled.add(2.0);
  const std::string md = markdown_section("My | Title", cfg, summaries);
  EXPECT_EQ(md.rfind("## My \\| Title", 0), 0u);  // escaped heading first
  EXPECT_NE(md.find("- field:"), std::string::npos);
  EXPECT_NE(md.find("| FTTT |"), std::string::npos);
}

}  // namespace
}  // namespace fttt
