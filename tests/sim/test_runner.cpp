#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <array>

namespace fttt {
namespace {

ScenarioConfig quick_config() {
  ScenarioConfig cfg;
  cfg.sensor_count = 8;
  cfg.duration = 10.0;
  cfg.grid_cell = 2.0;
  return cfg;
}

TEST(Runner, ProducesOneEstimatePerEpochPerMethod) {
  const std::array<Method, 2> methods{Method::kFttt, Method::kDirectMle};
  const TrackingResult r = run_tracking(quick_config(), methods);
  const std::size_t epochs = static_cast<std::size_t>(10.0 / 0.5);
  EXPECT_EQ(r.times.size(), epochs);
  EXPECT_EQ(r.true_positions.size(), epochs);
  ASSERT_EQ(r.methods.size(), 2u);
  for (const auto& m : r.methods) {
    EXPECT_EQ(m.estimates.size(), epochs);
    EXPECT_EQ(m.errors.size(), epochs);
  }
}

TEST(Runner, ErrorsMatchEstimateDistances) {
  const std::array<Method, 1> methods{Method::kFttt};
  const TrackingResult r = run_tracking(quick_config(), methods);
  for (std::size_t i = 0; i < r.times.size(); ++i)
    EXPECT_DOUBLE_EQ(r.methods[0].errors[i],
                     distance(r.methods[0].estimates[i], r.true_positions[i]));
}

TEST(Runner, BuildsOnlyNeededFaceMaps) {
  const std::array<Method, 1> fttt_only{Method::kFttt};
  const TrackingResult a = run_tracking(quick_config(), fttt_only);
  EXPECT_GT(a.faces_uncertain, 0u);
  EXPECT_EQ(a.faces_bisector, 0u);

  const std::array<Method, 1> mle_only{Method::kDirectMle};
  const TrackingResult b = run_tracking(quick_config(), mle_only);
  EXPECT_EQ(b.faces_uncertain, 0u);
  EXPECT_GT(b.faces_bisector, 0u);
}

TEST(Runner, SameTrialReproduces) {
  const std::array<Method, 2> methods{Method::kFttt, Method::kPathMatching};
  const TrackingResult a = run_tracking(quick_config(), methods, 3);
  const TrackingResult b = run_tracking(quick_config(), methods, 3);
  ASSERT_EQ(a.methods[0].errors.size(), b.methods[0].errors.size());
  for (std::size_t i = 0; i < a.methods[0].errors.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.methods[0].errors[i], b.methods[0].errors[i]);
    EXPECT_DOUBLE_EQ(a.methods[1].errors[i], b.methods[1].errors[i]);
  }
}

TEST(Runner, DifferentTrialsDiffer) {
  const std::array<Method, 1> methods{Method::kFttt};
  const TrackingResult a = run_tracking(quick_config(), methods, 0);
  const TrackingResult b = run_tracking(quick_config(), methods, 1);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.true_positions.size(); ++i)
    if (!(a.true_positions[i] == b.true_positions[i])) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Runner, GridDeploymentRuns) {
  ScenarioConfig cfg = quick_config();
  cfg.deployment = DeploymentKind::kGrid;
  const std::array<Method, 1> methods{Method::kFttt};
  const TrackingResult r = run_tracking(cfg, methods);
  EXPECT_FALSE(r.methods[0].errors.empty());
}

TEST(Runner, UShapeTraceRuns) {
  ScenarioConfig cfg = quick_config();
  cfg.trace = TraceKind::kUShape;
  const std::array<Method, 1> methods{Method::kFtttExtended};
  const TrackingResult r = run_tracking(cfg, methods);
  EXPECT_FALSE(r.methods[0].errors.empty());
}

TEST(Runner, DropoutConfigRuns) {
  ScenarioConfig cfg = quick_config();
  cfg.dropout_probability = 0.3;
  const std::array<Method, 1> methods{Method::kFttt};
  const TrackingResult r = run_tracking(cfg, methods);
  EXPECT_FALSE(r.methods[0].errors.empty());
}

TEST(Runner, BoundedChannelRuns) {
  ScenarioConfig cfg = quick_config();
  cfg.channel = Channel::kBounded;
  const std::array<Method, 2> methods{Method::kFttt, Method::kDirectMle};
  const TrackingResult r = run_tracking(cfg, methods);
  for (const auto& m : r.methods) EXPECT_FALSE(m.errors.empty());
}

TEST(Runner, ChannelChangesResults) {
  ScenarioConfig gaussian = quick_config();
  ScenarioConfig bounded = quick_config();
  bounded.channel = Channel::kBounded;
  const std::array<Method, 1> methods{Method::kFttt};
  const TrackingResult a = run_tracking(gaussian, methods);
  const TrackingResult b = run_tracking(bounded, methods);
  EXPECT_NE(a.methods[0].mean_error(), b.methods[0].mean_error());
}

TEST(Runner, CalibrationTogglesDivision) {
  // Calibration widens C, so the uncertain map has different (fewer,
  // larger-0-region) faces than the literal Eq. 3 division.
  ScenarioConfig calibrated = quick_config();
  ScenarioConfig literal = quick_config();
  literal.calibrate_C = false;
  const std::array<Method, 1> methods{Method::kFttt};
  const TrackingResult a = run_tracking(calibrated, methods);
  const TrackingResult b = run_tracking(literal, methods);
  EXPECT_NE(a.faces_uncertain, b.faces_uncertain);
}

TEST(Runner, GaussMarkovTraceRuns) {
  ScenarioConfig cfg = quick_config();
  cfg.trace = TraceKind::kGaussMarkov;
  const std::array<Method, 1> methods{Method::kFttt};
  const TrackingResult r = run_tracking(cfg, methods);
  EXPECT_FALSE(r.methods[0].errors.empty());
  for (const Vec2 p : r.true_positions) EXPECT_TRUE(cfg.field.contains(p));
}

TEST(Runner, MovingGroupRuns) {
  ScenarioConfig cfg = quick_config();
  cfg.freeze_group = false;
  cfg.v_min = cfg.v_max = 5.0;
  const std::array<Method, 1> methods{Method::kFttt};
  const TrackingResult frozen_run = run_tracking(quick_config(), methods);
  const TrackingResult moving_run = run_tracking(cfg, methods);
  EXPECT_EQ(frozen_run.methods[0].errors.size(), moving_run.methods[0].errors.size());
}

TEST(Runner, NoMethodsThrows) {
  EXPECT_THROW(run_tracking(quick_config(), {}), std::invalid_argument);
}

TEST(Runner, MeanAndStddevHelpers) {
  MethodTrackResult m;
  m.errors = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(m.mean_error(), 2.0);
  EXPECT_DOUBLE_EQ(m.stddev_error(), 1.0);
}

TEST(MethodName, AllNamesDistinct) {
  EXPECT_EQ(method_name(Method::kFttt), "FTTT");
  EXPECT_EQ(method_name(Method::kFtttExtended), "FTTT-ext");
  EXPECT_EQ(method_name(Method::kPathMatching), "PM");
  EXPECT_EQ(method_name(Method::kDirectMle), "DirectMLE");
}

}  // namespace
}  // namespace fttt
