// Bit-equivalence contract of the epoch pipeline against the serial
// runner (the executable specification). Every comparison below is
// EXPECT_EQ on doubles — exact equality, not tolerance — across
// channels, vector modes, missing policies, methods, thread counts and
// the face-map cache.
#include "sim/epoch_pipeline.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/runner.hpp"

namespace fttt {
namespace {

ScenarioConfig quick_config() {
  ScenarioConfig cfg;
  cfg.sensor_count = 8;
  cfg.duration = 10.0;
  cfg.grid_cell = 2.0;
  return cfg;
}

void expect_bit_identical(const TrackingResult& serial, const TrackingResult& piped) {
  EXPECT_EQ(serial.faces_uncertain, piped.faces_uncertain);
  EXPECT_EQ(serial.faces_bisector, piped.faces_bisector);
  ASSERT_EQ(serial.times.size(), piped.times.size());
  for (std::size_t e = 0; e < serial.times.size(); ++e) {
    EXPECT_EQ(serial.times[e], piped.times[e]);
    EXPECT_EQ(serial.true_positions[e].x, piped.true_positions[e].x);
    EXPECT_EQ(serial.true_positions[e].y, piped.true_positions[e].y);
  }
  ASSERT_EQ(serial.methods.size(), piped.methods.size());
  for (std::size_t m = 0; m < serial.methods.size(); ++m) {
    EXPECT_EQ(serial.methods[m].method, piped.methods[m].method);
    ASSERT_EQ(serial.methods[m].estimates.size(), piped.methods[m].estimates.size());
    for (std::size_t e = 0; e < serial.methods[m].estimates.size(); ++e) {
      EXPECT_EQ(serial.methods[m].estimates[e].x, piped.methods[m].estimates[e].x);
      EXPECT_EQ(serial.methods[m].estimates[e].y, piped.methods[m].estimates[e].y);
      EXPECT_EQ(serial.methods[m].errors[e], piped.methods[m].errors[e]);
    }
  }
}

TEST(EpochPipeline, BitIdenticalAcrossChannelsPoliciesAndThreads) {
  const std::array<Method, 4> methods{Method::kFttt, Method::kFtttExtended,
                                      Method::kPathMatching, Method::kDirectMle};
  for (Channel channel : {Channel::kGaussian, Channel::kBounded}) {
    for (MissingPolicy missing :
         {MissingPolicy::kMissingReadsSmaller, MissingPolicy::kMissingUnknown}) {
      ScenarioConfig cfg = quick_config();
      cfg.channel = channel;
      cfg.missing = missing;
      cfg.dropout_probability = 0.2;  // exercise the missing policy
      const TrackingResult serial = run_tracking(cfg, methods);
      for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool(threads);
        expect_bit_identical(serial, run_tracking_pipelined(cfg, methods, 0, pool));
      }
    }
  }
}

TEST(EpochPipeline, BitIdenticalPerMethodAcrossTrials) {
  const std::array<Method, 4> all{Method::kFttt, Method::kFtttExtended,
                                  Method::kPathMatching, Method::kDirectMle};
  for (Method method : all) {
    const std::array<Method, 1> one{method};
    for (std::uint64_t trial : {std::uint64_t{0}, std::uint64_t{5}}) {
      const TrackingResult serial = run_tracking(quick_config(), one, trial);
      const TrackingResult piped = run_tracking_pipelined(quick_config(), one, trial);
      expect_bit_identical(serial, piped);
    }
  }
}

TEST(EpochPipeline, BitIdenticalThroughFaceMapCache) {
  const std::array<Method, 2> methods{Method::kFttt, Method::kPathMatching};
  ScenarioConfig cfg = quick_config();
  FaceMapCache cache;
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const TrackingResult serial = run_tracking(cfg, methods, trial);
    const TrackingResult piped = run_tracking_pipelined(
        cfg, methods, trial, ThreadPool::global(), &cache);
    expect_bit_identical(serial, piped);
  }
}

TEST(EpochPipeline, CacheBuildsOncePerUniqueKeyOnFixedDeployment) {
  // Grid deployment is trial-invariant, so three trials share both maps:
  // one build for the uncertain map, one for the bisector map.
  ScenarioConfig cfg = quick_config();
  cfg.deployment = DeploymentKind::kGrid;
  const std::array<Method, 2> methods{Method::kFttt, Method::kDirectMle};
  FaceMapCache cache;
  for (std::uint64_t trial = 0; trial < 3; ++trial)
    run_tracking_pipelined(cfg, methods, trial, ThreadPool::global(), &cache);
  const FaceMapCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.hits, 4u);
}

TEST(EpochPipeline, RandomDeploymentMissesPerTrial) {
  // Random deployment re-draws node positions per trial: content keys
  // differ, so the cache must not alias them.
  ScenarioConfig cfg = quick_config();
  const std::array<Method, 1> methods{Method::kFttt};
  FaceMapCache cache;
  run_tracking_pipelined(cfg, methods, 0, ThreadPool::global(), &cache);
  run_tracking_pipelined(cfg, methods, 1, ThreadPool::global(), &cache);
  const FaceMapCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(EpochPipeline, DuplicateMethodEntriesAgree) {
  // A duplicated stateless method must produce two identical columns
  // (the pipeline shares one precomputed one-shot vector between them).
  const std::array<Method, 2> methods{Method::kDirectMle, Method::kDirectMle};
  const TrackingResult r = run_tracking_pipelined(quick_config(), methods);
  ASSERT_EQ(r.methods.size(), 2u);
  ASSERT_EQ(r.methods[0].errors.size(), r.methods[1].errors.size());
  for (std::size_t e = 0; e < r.methods[0].errors.size(); ++e)
    EXPECT_EQ(r.methods[0].errors[e], r.methods[1].errors[e]);
}

TEST(EpochPipeline, ZeroEpochRunIsEmptyNotPoisoned) {
  ScenarioConfig cfg = quick_config();
  cfg.duration = 0.1;  // shorter than the 0.5 s localization period
  const std::array<Method, 1> methods{Method::kFttt};
  const TrackingResult r = run_tracking_pipelined(cfg, methods);
  EXPECT_TRUE(r.times.empty());
  EXPECT_TRUE(r.methods[0].errors.empty());
}

TEST(EpochPipeline, NoMethodsThrows) {
  EXPECT_THROW(run_tracking_pipelined(quick_config(), {}), std::invalid_argument);
}

}  // namespace
}  // namespace fttt
