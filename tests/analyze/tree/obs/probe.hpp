// Fixture support header for the obs layer: the steady_clock use is
// legal here (timing_allow_layers = ["obs"]) and the header is a legal
// include target for core and sim per the fixture DAG.
#pragma once

#include <chrono>

namespace fixture {

inline long now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
