// Fixture: LAYER02 layering-thread. No fixture layer owns the thread
// primitive (fixtures_layering.toml [primitives]), so both the <thread>
// include and the std::thread member must be diagnosed.
#include <thread>
#include <vector>

namespace fixture {

struct Runner {
  std::vector<std::thread> workers;
};

}  // namespace fixture
