// Fixture header: declares the unordered member that
// bad_unordered.cpp iterates — exercising the cross-file declaration
// harvest (the real repo's shape: SoA state structs declare in the
// header, the engine TU iterates).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

struct Index {
  std::unordered_map<std::string, std::uint32_t> by_name;
  double total = 0.0;
};

}  // namespace fixture
