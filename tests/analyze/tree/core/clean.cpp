// Fixture: a TU exercising the legal versions of every checked pattern —
// ordered iteration, deterministic seeding hooks, pure probe arguments —
// that must produce zero findings.
#include <map>
#include <vector>

#include "obs/probe.hpp"

#define FTTT_OBS_COUNT(name, delta) (void)(delta)
#define FTTT_DCHECK(cond, ...) (void)(cond)

namespace fixture {

double accumulate_sorted(const std::map<int, double>& table) {
  double sum = 0.0;
  for (const auto& [key, value] : table) sum += value + key;
  FTTT_OBS_COUNT("fixture.rows", table.size());
  FTTT_DCHECK(sum >= 0.0, "sum ", sum);
  return sum;
}

double mean(const std::vector<double>& xs) {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return xs.empty() ? 0.0 : acc / static_cast<double>(xs.size());
}

}  // namespace fixture
