// Fixture: OBS01 obs-arg-side-effect. Three side-effecting probe
// arguments: an increment, a mutating member call, and an assignment.
// Under -DFTTT_OBS=OFF none of these would execute — the exact ON/OFF
// divergence the check exists to catch. The macros are declared locally
// so the fixture is self-contained; the analyzer keys on names.
#include <vector>

#define FTTT_OBS_COUNT(name, delta) (void)(delta)
#define FTTT_OBS_HIST(name, unit, value) (void)(value)
#define FTTT_OBS_GAUGE_SET(name, value) (void)(value)

namespace fixture {

int process(std::vector<int>& scratch) {
  int batches = 0;
  FTTT_OBS_COUNT("fixture.batches", ++batches);
  FTTT_OBS_HIST("fixture.scratch", "items", (scratch.push_back(1), scratch.size()));
  int mode = 0;
  FTTT_OBS_GAUGE_SET("fixture.mode", mode = 2);
  return batches + mode;
}

}  // namespace fixture
