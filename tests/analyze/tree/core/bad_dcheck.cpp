// Fixture: CON01 contract-arg-side-effect. FTTT_DCHECK compiles out
// under -DFTTT_CONTRACTS=OFF, so a side-effecting condition (the pop
// here) makes checked and release builds diverge — the worst kind of
// Heisenbug. The detail argument is compiled out too, so the increment
// is equally banned.
#include <deque>

#define FTTT_DCHECK(cond, ...) (void)(cond)

namespace fixture {

int drain(std::deque<int>& queue) {
  int drained = 0;
  FTTT_DCHECK((queue.pop_front(), true), "queue must drain");
  FTTT_DCHECK(drained >= 0, "drained count ", drained++);
  return drained;
}

}  // namespace fixture
