// Fixture: DET03 determinism-fp-contract. Listed in
// fixtures_config.toml [kernels].fp_sensitive; the self-test generates a
// compile_commands.json entry for this TU *without* -ffp-contract=off,
// so the check must flag the TU (and stay quiet for the _ok twin).
namespace fixture {

double fused_accumulate(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];  // contractible
  return acc;
}

}  // namespace fixture
