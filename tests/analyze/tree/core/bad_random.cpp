// Fixture: DET01 determinism-source. Four distinct nondeterministic
// sources, each of which would break the RngStream substream discipline.
// (The fttt-lint allows keep the regex linter quiet: this file exists to
// exercise the AST-level analyzer's version of the rule.)
#include <chrono>
#include <ctime>
#include <random>

namespace fixture {

unsigned nondeterministic_seed() {
  std::random_device rd;
  unsigned seed = rd();
  seed ^= static_cast<unsigned>(rand());  // fttt-lint: allow(banned-random): fixture exercising DET01
  seed ^= static_cast<unsigned>(std::time(nullptr));  // fttt-lint: allow(banned-random): fixture exercising DET01
  auto wall = std::chrono::system_clock::now();
  seed ^= static_cast<unsigned>(wall.time_since_epoch().count());
  return seed;
}

}  // namespace fixture
