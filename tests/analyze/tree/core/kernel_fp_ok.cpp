// Fixture: DET03 negative control. Also listed in fp_sensitive, but the
// self-test's generated compile_commands.json gives this TU
// -ffp-contract=off — so the check must stay quiet here.
namespace fixture {

double safe_accumulate(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace fixture
