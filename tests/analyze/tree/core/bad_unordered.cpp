// Fixture: DET02 determinism-unordered-iter. Two hazards: a range-for
// over a header-declared unordered member flowing into an accumulation,
// and an in-file unordered_set iterated by iterator loop.
#include <unordered_set>

#include "core/bad_unordered.hpp"

namespace fixture {

double accumulate_in_bucket_order(const Index& index) {
  double sum = 0.0;
  for (const auto& [name, id] : index.by_name) {
    sum += static_cast<double>(id) + static_cast<double>(name.size());
  }
  return sum;
}

int count_by_iterator() {
  std::unordered_set<int> seen{1, 2, 3};
  int n = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) n += *it;
  return n;
}

}  // namespace fixture
