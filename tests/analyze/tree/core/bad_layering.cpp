// Fixture: LAYER01 layering-dag. `core` may depend on `obs` but not on
// `sim` (fixtures_layering.toml) — the second include is an inverted
// edge, exactly the shape of a core -> sim leak in the real DAG.
#include "obs/probe.hpp"
#include "sim/engine.hpp"

namespace fixture {

int use_engine() { return 42; }

}  // namespace fixture
