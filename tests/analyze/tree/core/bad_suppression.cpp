// Fixture: suppression hygiene. A reason-less allow() does NOT excuse
// its finding and is itself flagged (SUP00); a reasoned allow() that
// matches nothing is stale (SUP01).
#include <unordered_set>

namespace fixture {

int bad_allows() {
  std::unordered_set<int> bag{1, 2, 3};
  int n = 0;
  // fttt-analyze: allow(determinism-unordered-iter) -- fttt-lint: allow(suppression-reason): SUP00 fixture requires a reason-less allow
  for (int v : bag) n += v;
  // fttt-analyze: allow(determinism-source): no randomness on the next line at all
  int unrelated = n + 1;
  return unrelated;
}

}  // namespace fixture
