// Fixture: CON02 contract-throw-in-hot-loop. Listed in
// fixtures_config.toml [kernels].no_throw_loops: the contract policy is
// throw-at-entry / FTTT_DCHECK-in-loop, so both the braced-body and the
// single-statement-body throws must be diagnosed.
#include <stdexcept>
#include <vector>

namespace fixture {

double sum_positive(const std::vector<double>& xs) {
  double acc = 0.0;
  for (double x : xs) {
    if (x < 0.0) throw std::invalid_argument("negative sample");
    acc += x;
  }
  std::size_t i = 0;
  while (i < xs.size())
    if (xs[i++] > 1e9) throw std::overflow_error("unbounded sample");
  return acc;
}

}  // namespace fixture
