// Fixture: reasoned suppressions silence findings (exit 0) while the
// engine still counts them as suppressed. One same-line allow and one
// preceding-line allow, covering both accepted placements.
#include <string>
#include <unordered_map>

namespace fixture {

int lookup_weights(const std::unordered_map<std::string, int>& weights) {
  int checksum = 0;
  // fttt-analyze: allow(determinism-unordered-iter): order-independent XOR fold, verified commutative
  for (const auto& [key, w] : weights) {
    checksum ^= w + static_cast<int>(key.size());
  }
  std::unordered_map<std::string, int> local{{"a", 1}};
  for (const auto& [key, w] : local) checksum ^= w;  // fttt-analyze: allow(determinism-unordered-iter): single-element map, order vacuous
  return checksum;
}

}  // namespace fixture
