// Fixture support header: exists so bad_layering.cpp's inverted
// core -> sim include resolves to a real file (resolution is not what
// LAYER01 tests, the edge direction is).
#pragma once

namespace fixture {

struct Engine {
  int ticks = 0;
};

}  // namespace fixture
