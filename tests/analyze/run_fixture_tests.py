#!/usr/bin/env python3
"""Self-tests for tools/fttt_analyze: every shipped check must (a) fire
with its exact diagnostic code on the violating fixture TU under
tests/analyze/tree, (b) stay quiet on the clean TU, and (c) honor
reasoned suppressions while flagging reason-less and stale ones.

Runs the analyzer as a subprocess (the supported entry point), asserts
on the machine-readable JSON report, and checks exit statuses. When the
libclang frontend is importable, every scenario is additionally rerun
with --frontend libclang and the finding sets are asserted identical to
the token frontend's — the two-frontends-one-model contract.

Exit status: 0 all scenarios pass, 1 otherwise.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
TREE = "tests/analyze/tree"
CONFIG = REPO / "tests/analyze/fixtures_config.toml"
LAYERING = REPO / "tests/analyze/fixtures_layering.toml"

FAILURES: list[str] = []


def run_analyzer(paths: list[str], extra: list[str] = (),
                 frontend: str = "tokens") -> tuple[int, dict]:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out = tmp.name
    cmd = [sys.executable, str(REPO / "tools" / "fttt_analyze"),
           *[str(REPO / p) for p in paths],
           "--config", str(CONFIG), "--layering", str(LAYERING),
           "--frontend", frontend, "--json", out, *extra]
    proc = subprocess.run(cmd, capture_output=True, text=True, cwd=REPO)
    try:
        report = json.loads(Path(out).read_text())
    finally:
        Path(out).unlink(missing_ok=True)
    if proc.returncode not in (0, 1):
        FAILURES.append(f"analyzer crashed ({proc.returncode}) on {paths}: "
                        f"{proc.stderr.strip()}")
        return proc.returncode, {"findings": [], "suppressed": []}
    return proc.returncode, report


def codes(report: dict) -> list[tuple[str, int]]:
    return sorted((f["code"], f["line"]) for f in report["findings"])


def expect(label: str, got, want) -> None:
    if got != want:
        FAILURES.append(f"{label}: got {got!r}, want {want!r}")


def scenario_fixtures(frontend: str) -> None:
    tag = f"[{frontend}]"

    rc, rep = run_analyzer([f"{TREE}/core/bad_layering.cpp"], frontend=frontend)
    expect(f"{tag} bad_layering exit", rc, 1)
    expect(f"{tag} bad_layering codes", codes(rep), [("LAYER01", 5)])

    rc, rep = run_analyzer([f"{TREE}/core/bad_thread.cpp"], frontend=frontend)
    expect(f"{tag} bad_thread exit", rc, 1)
    expect(f"{tag} bad_thread codes", codes(rep),
           [("LAYER02", 4), ("LAYER02", 10)])

    rc, rep = run_analyzer([f"{TREE}/core/bad_random.cpp"], frontend=frontend)
    expect(f"{tag} bad_random exit", rc, 1)
    expect(f"{tag} bad_random codes", codes(rep),
           [("DET01", 12), ("DET01", 14), ("DET01", 15), ("DET01", 16)])

    rc, rep = run_analyzer([f"{TREE}/core/bad_unordered.cpp"],
                           frontend=frontend)
    expect(f"{tag} bad_unordered exit", rc, 1)
    expect(f"{tag} bad_unordered codes", codes(rep),
           [("DET02", 12), ("DET02", 21)])

    # DET03: generate a compile db on the fly — kernel_fp.cpp without the
    # contraction flag (must fire), kernel_fp_ok.cpp with it (must not).
    with tempfile.TemporaryDirectory() as tmpdir:
        db = Path(tmpdir) / "compile_commands.json"
        db.write_text(json.dumps([
            {"directory": str(REPO),
             "file": f"{TREE}/core/kernel_fp.cpp",
             "command": f"g++ -O2 -c {TREE}/core/kernel_fp.cpp"},
            {"directory": str(REPO),
             "file": f"{TREE}/core/kernel_fp_ok.cpp",
             "command": "g++ -O2 -ffp-contract=off -c "
                        f"{TREE}/core/kernel_fp_ok.cpp"},
        ]))
        rc, rep = run_analyzer(
            [f"{TREE}/core/kernel_fp.cpp", f"{TREE}/core/kernel_fp_ok.cpp"],
            extra=["--compile-commands", str(db)], frontend=frontend)
        expect(f"{tag} kernel_fp exit", rc, 1)
        expect(f"{tag} kernel_fp codes", codes(rep), [("DET03", 1)])
        files = [f["file"] for f in rep["findings"]]
        expect(f"{tag} kernel_fp file", files, [f"{TREE}/core/kernel_fp.cpp"])

    rc, rep = run_analyzer([f"{TREE}/core/bad_obs_arg.cpp"], frontend=frontend)
    expect(f"{tag} bad_obs_arg exit", rc, 1)
    expect(f"{tag} bad_obs_arg codes", codes(rep),
           [("OBS01", 16), ("OBS01", 17), ("OBS01", 19)])

    rc, rep = run_analyzer([f"{TREE}/core/bad_dcheck.cpp"], frontend=frontend)
    expect(f"{tag} bad_dcheck exit", rc, 1)
    expect(f"{tag} bad_dcheck codes", codes(rep),
           [("CON01", 14), ("CON01", 15)])

    rc, rep = run_analyzer([f"{TREE}/core/kernel_throw.cpp"],
                           frontend=frontend)
    expect(f"{tag} kernel_throw exit", rc, 1)
    expect(f"{tag} kernel_throw codes", codes(rep),
           [("CON02", 13), ("CON02", 18)])

    rc, rep = run_analyzer([f"{TREE}/core/suppressed.cpp"], frontend=frontend)
    expect(f"{tag} suppressed exit", rc, 0)
    expect(f"{tag} suppressed active", codes(rep), [])
    expect(f"{tag} suppressed count", len(rep["suppressed"]), 2)
    expect(f"{tag} suppressed reasons",
           all(f.get("reason") for f in rep["suppressed"]), True)

    rc, rep = run_analyzer([f"{TREE}/core/bad_suppression.cpp"],
                           frontend=frontend)
    expect(f"{tag} bad_suppression exit", rc, 1)
    expect(f"{tag} bad_suppression codes", codes(rep),
           [("DET02", 12), ("SUP00", 11), ("SUP01", 13)])

    rc, rep = run_analyzer([f"{TREE}/core/clean.cpp"], frontend=frontend)
    expect(f"{tag} clean exit", rc, 0)
    expect(f"{tag} clean findings", codes(rep), [])

    # Whole-tree run: --checks subsetting honors only the named check —
    # plus SUP00, which is hygiene and reported regardless of subset (a
    # reason-less allow() is broken whatever checks run).
    rc, rep = run_analyzer([TREE], extra=["--checks", "layering-dag"],
                           frontend=frontend)
    expect(f"{tag} subset exit", rc, 1)
    expect(f"{tag} subset codes", sorted({c for c, _ in codes(rep)}),
           ["LAYER01", "SUP00"])


def scenario_frontend_parity() -> None:
    """When libclang is importable, both frontends must agree on every
    fixture finding (code + line)."""
    sys.path.insert(0, str(REPO / "tools"))
    from fttt_analyze import frontend_clang
    if not frontend_clang.available():
        print("libclang unavailable: parity scenarios skipped "
              "(token frontend is authoritative here)")
        return
    scenario_fixtures("libclang")


def main() -> int:
    scenario_fixtures("tokens")
    scenario_frontend_parity()
    if FAILURES:
        for f in FAILURES:
            print(f"FAIL: {f}")
        print(f"run_fixture_tests: {len(FAILURES)} failure(s)")
        return 1
    print("run_fixture_tests: all fixture scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
