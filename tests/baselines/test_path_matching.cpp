#include "baselines/path_matching.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {40.0, 40.0}};

std::shared_ptr<const FaceMap> bisector_map() {
  return std::make_shared<const FaceMap>(
      FaceMap::build(grid_deployment(kField, 9), 1.0, kField, 0.5));
}

GroupingSampling sample_at(const FaceMap& map, Vec2 target, double sigma,
                           std::uint64_t epoch) {
  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = sigma, .d0 = 1.0};
  cfg.sensing_range = 100.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 3;
  const NoFaults faults;
  return collect_group(map.nodes(), cfg, faults, epoch, 0.0,
                       [&](double) { return target; }, RngStream(13).substream(epoch));
}

TEST(PathMatching, ConfigValidation) {
  auto map = bisector_map();
  EXPECT_THROW(PathMatchingTracker(nullptr, {}), std::invalid_argument);
  PathMatchingTracker::Config bad;
  bad.window = 0;
  EXPECT_THROW(PathMatchingTracker(map, bad), std::invalid_argument);
  bad.window = 4;
  bad.candidates = 0;
  EXPECT_THROW(PathMatchingTracker(map, bad), std::invalid_argument);
}

TEST(PathMatching, NoiselessStationaryConverges) {
  auto map = bisector_map();
  PathMatchingTracker tracker(map, {});
  const Vec2 target{25.0, 15.0};
  TrackEstimate last{};
  for (std::uint64_t e = 0; e < 10; ++e)
    last = tracker.localize(sample_at(*map, target, 0.0, e));
  EXPECT_LT(distance(last.position, target), 6.0);
}

TEST(PathMatching, NodeCountMismatchThrows) {
  PathMatchingTracker tracker(bisector_map(), {});
  GroupingSampling g(2, 1);
  EXPECT_THROW(tracker.localize(g), std::invalid_argument);
}

TEST(PathMatching, VelocityConstraintSmoothsJumps) {
  // Under heavy noise, PM's window + velocity constraint should produce a
  // lower mean error than raw one-shot matching (Direct MLE behavior is
  // approximated by PM with window 1).
  auto map = bisector_map();
  PathMatchingTracker::Config pm_cfg;
  pm_cfg.window = 8;
  PathMatchingTracker::Config oneshot_cfg;
  oneshot_cfg.window = 1;
  PathMatchingTracker pm(map, pm_cfg);
  PathMatchingTracker oneshot(map, oneshot_cfg);

  const Vec2 target{20.0, 20.0};
  double pm_err = 0.0;
  double oneshot_err = 0.0;
  for (std::uint64_t e = 0; e < 60; ++e) {
    const auto g = sample_at(*map, target, 6.0, e);
    pm_err += distance(pm.localize(g).position, target);
    oneshot_err += distance(oneshot.localize(g).position, target);
  }
  EXPECT_LT(pm_err, oneshot_err);
}

TEST(PathMatching, ResetClearsWindow) {
  auto map = bisector_map();
  PathMatchingTracker tracker(map, {});
  for (std::uint64_t e = 0; e < 5; ++e)
    tracker.localize(sample_at(*map, {10.0, 10.0}, 0.0, e));
  tracker.reset();
  // After reset, a far-away target is acquired immediately (no stale
  // velocity constraint drags the estimate).
  const TrackEstimate e = tracker.localize(sample_at(*map, {35.0, 35.0}, 0.0, 50));
  EXPECT_LT(distance(e.position, {35.0, 35.0}), 6.0);
}

TEST(PathMatching, TracksAMovingTarget) {
  auto map = bisector_map();
  PathMatchingTracker::Config cfg;
  cfg.max_velocity = 5.0;
  cfg.period = 0.5;
  PathMatchingTracker tracker(map, cfg);
  double total_err = 0.0;
  int count = 0;
  for (std::uint64_t e = 0; e < 40; ++e) {
    const Vec2 target{5.0 + 0.75 * static_cast<double>(e), 20.0};  // 1.5 m/s
    const auto g = sample_at(*map, target, 0.0, e);
    const TrackEstimate est = tracker.localize(g);
    if (e >= 5) {  // after warm-up
      total_err += distance(est.position, target);
      ++count;
    }
  }
  EXPECT_LT(total_err / count, 7.0);
}

}  // namespace
}  // namespace fttt
