#include "baselines/direct_mle.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {40.0, 40.0}};

std::shared_ptr<const FaceMap> bisector_map() {
  return std::make_shared<const FaceMap>(
      FaceMap::build(grid_deployment(kField, 9), 1.0, kField, 0.5));
}

GroupingSampling sample_at(const FaceMap& map, Vec2 target, double sigma,
                           std::uint64_t epoch = 0) {
  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = sigma, .d0 = 1.0};
  cfg.sensing_range = 100.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 5;
  const NoFaults faults;
  return collect_group(map.nodes(), cfg, faults, epoch, 0.0,
                       [&](double) { return target; }, RngStream(7).substream(epoch));
}

TEST(OneShotVector, UsesOnlyTheRequestedInstant) {
  GroupingSampling g(2, 2);
  g.set_column(0, std::vector<double>{-40.0, -60.0});
  g.set_column(1, std::vector<double>{-50.0, -50.0});
  const SamplingVector v0 = one_shot_vector(g, 0, 0.0);
  const SamplingVector v1 = one_shot_vector(g, 1, 0.0);
  EXPECT_DOUBLE_EQ(v0.value[0], +1.0);  // -40 > -50
  EXPECT_DOUBLE_EQ(v1.value[0], -1.0);  // -60 < -50
}

TEST(OneShotVector, OutOfRangeInstantThrows) {
  GroupingSampling g(2, 1);
  g.set_column(0, std::vector<double>{-40.0});
  g.set_column(1, std::vector<double>{-50.0});
  EXPECT_THROW(one_shot_vector(g, 1, 0.0), std::out_of_range);
}

TEST(OneShotVector, MissingNodeConventions) {
  GroupingSampling g(3, 1);
  g.set_column(0, std::vector<double>{-40.0});
  // node 1, 2 missing.
  const SamplingVector v = one_shot_vector(g, 0, 0.0);
  EXPECT_DOUBLE_EQ(v.value[0], +1.0);  // (0,1): 0 present
  EXPECT_DOUBLE_EQ(v.value[1], +1.0);  // (0,2)
  EXPECT_FALSE(v.known[2]);            // (1,2): both missing
}

TEST(DirectMle, NullMapThrows) {
  EXPECT_THROW(DirectMleTracker(nullptr, 1.0), std::invalid_argument);
}

TEST(DirectMle, NoiselessLocalizationIsAccurate) {
  auto map = bisector_map();
  DirectMleTracker tracker(map, 0.0);
  for (Vec2 target : {Vec2{10.0, 10.0}, Vec2{30.0, 12.0}}) {
    const TrackEstimate e = tracker.localize(sample_at(*map, target, 0.0));
    EXPECT_LT(distance(e.position, target), 6.0);
  }
}

TEST(DirectMle, NodeCountMismatchThrows) {
  DirectMleTracker tracker(bisector_map(), 1.0);
  GroupingSampling g(2, 1);
  EXPECT_THROW(tracker.localize(g), std::invalid_argument);
}

TEST(DirectMle, NoisyOneShotIsWorseThanNoiseless) {
  auto map = bisector_map();
  DirectMleTracker tracker(map, 1.0);
  const Vec2 target{17.0, 23.0};
  double clean_err = 0.0;
  double noisy_err = 0.0;
  for (std::uint64_t e = 0; e < 30; ++e) {
    clean_err += distance(tracker.localize(sample_at(*map, target, 0.0, e)).position, target);
    noisy_err += distance(tracker.localize(sample_at(*map, target, 6.0, e)).position, target);
  }
  EXPECT_LT(clean_err, noisy_err);
}

}  // namespace
}  // namespace fttt
