#include "baselines/sequence_localizer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/direct_mle.hpp"
#include "net/deployment.hpp"
#include "net/faults.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {40.0, 40.0}};

std::shared_ptr<const FaceMap> bisector_map(std::size_t n = 9) {
  return std::make_shared<const FaceMap>(
      FaceMap::build(grid_deployment(kField, n), 1.0, kField, 0.5));
}

GroupingSampling sample_at(const FaceMap& map, Vec2 target, double sigma,
                           std::uint64_t epoch = 0) {
  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = sigma, .d0 = 1.0};
  cfg.sensing_range = 200.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 3;
  const NoFaults faults;
  return collect_group(map.nodes(), cfg, faults, epoch, 0.0,
                       [&](double) { return target; }, RngStream(31).substream(epoch));
}

TEST(SequenceLocalizer, NullMapThrows) {
  EXPECT_THROW(SequenceLocalizer(nullptr), std::invalid_argument);
}

TEST(SequenceLocalizer, CleanLocalizationIsAccurate) {
  auto map = bisector_map();
  const SequenceLocalizer loc(map);
  for (Vec2 target : {Vec2{10.0, 10.0}, Vec2{28.0, 15.0}}) {
    const TrackEstimate e = loc.localize(sample_at(*map, target, 0.0));
    EXPECT_LT(distance(e.position, target), 7.0) << target;
  }
}

TEST(SequenceLocalizer, PerfectObservationGivesTauOne) {
  auto map = bisector_map();
  const SequenceLocalizer loc(map);
  // Sitting exactly on a face centroid with zero noise: the observed rank
  // vector equals that face's rank signature.
  const Vec2 centroid = map->faces().front().centroid;
  const TrackEstimate e = loc.localize(sample_at(*map, centroid, 0.0));
  EXPECT_DOUBLE_EQ(e.similarity, 1.0);  // kendall tau of the best face
}

TEST(SequenceLocalizer, AgreesWithPairwiseFormulationOnCleanData) {
  // On noiseless observations the rank-correlation and pairwise-order
  // formulations of [24] should land in (nearly) the same place.
  auto map = bisector_map();
  const SequenceLocalizer ranks(map);
  DirectMleTracker pairwise(map, 0.0);
  for (Vec2 target : {Vec2{8.0, 31.0}, Vec2{21.0, 12.0}, Vec2{33.0, 33.0}}) {
    const auto g = sample_at(*map, target, 0.0);
    const Vec2 a = ranks.localize(g).position;
    const Vec2 b = pairwise.localize(g).position;
    EXPECT_LT(distance(a, b), 5.0) << target;
  }
}

TEST(SequenceLocalizer, HandlesMissingNodes) {
  auto map = bisector_map(6);
  const SequenceLocalizer loc(map);
  GroupingSampling g = sample_at(*map, {20.0, 20.0}, 0.0);
  g.clear_column(1);
  g.clear_column(4);
  const TrackEstimate e = loc.localize(g);
  EXPECT_TRUE(kField.contains(e.position));
}

TEST(SequenceLocalizer, NodeCountMismatchThrows) {
  const SequenceLocalizer loc(bisector_map());
  GroupingSampling g(2, 1);
  EXPECT_THROW(loc.localize(g), std::invalid_argument);
}

TEST(SequenceLocalizer, EmptyGroupThrows) {
  auto map = bisector_map();
  const SequenceLocalizer loc(map);
  GroupingSampling g(map->nodes().size(), 0);
  EXPECT_THROW(loc.localize(g), std::invalid_argument);
}

}  // namespace
}  // namespace fttt
