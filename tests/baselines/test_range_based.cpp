#include "baselines/range_based.hpp"

#include <gtest/gtest.h>

#include "net/deployment.hpp"
#include "net/faults.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {40.0, 40.0}};

PathLossModel clean_model() {
  return PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 0.0, .d0 = 1.0};
}

GroupingSampling sample_at(const Deployment& nodes, Vec2 target, double sigma,
                           std::uint64_t epoch = 0) {
  SamplingConfig cfg;
  cfg.model = clean_model();
  cfg.model.sigma = sigma;
  cfg.sensing_range = 200.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 4;
  const NoFaults faults;
  return collect_group(nodes, cfg, faults, epoch, 0.0,
                       [&](double) { return target; }, RngStream(21).substream(epoch));
}

TEST(WeightedCentroid, PullsTowardTheNearestSensor) {
  const Deployment nodes = grid_deployment(kField, 9);
  const WeightedCentroidLocalizer loc(nodes);
  const Vec2 target = nodes[0].position;  // sit on a sensor
  const TrackEstimate e = loc.localize(sample_at(nodes, target, 0.0));
  // The power weighting should put the estimate nearer node 0 than the
  // plain centroid of the deployment (field centre).
  EXPECT_LT(distance(e.position, target), distance(kField.center(), target));
}

TEST(WeightedCentroid, NoReportsGivesOrigin) {
  const Deployment nodes = grid_deployment(kField, 4);
  const WeightedCentroidLocalizer loc(nodes);
  GroupingSampling g(4, 1);  // nobody reported
  const TrackEstimate e = loc.localize(g);
  EXPECT_EQ(e.position, Vec2(0.0, 0.0));
}

TEST(WeightedCentroid, NodeCountMismatchThrows) {
  const WeightedCentroidLocalizer loc(grid_deployment(kField, 4));
  GroupingSampling g(2, 1);
  EXPECT_THROW(loc.localize(g), std::invalid_argument);
}

TEST(Trilateration, ExactOnCleanRanges) {
  const Deployment nodes = grid_deployment(kField, 9);
  const TrilaterationLocalizer loc(nodes, {.model = clean_model()});
  for (Vec2 target : {Vec2{12.0, 17.0}, Vec2{30.0, 8.0}, Vec2{20.0, 20.0}}) {
    const TrackEstimate e = loc.localize(sample_at(nodes, target, 0.0));
    EXPECT_LT(distance(e.position, target), 0.5) << target;
  }
}

TEST(Trilateration, FallsBackWithFewAnchors) {
  const Deployment nodes = grid_deployment(kField, 4);
  const TrilaterationLocalizer loc(nodes, {.model = clean_model()});
  GroupingSampling g(4, 1);
  g.set_column(0, std::vector<double>{-50.0});
  g.set_column(1, std::vector<double>{-55.0});
  // Only two anchors: must not blow up; returns the centroid fallback.
  const TrackEstimate e = loc.localize(g);
  EXPECT_TRUE(kField.contains(e.position));
}

TEST(Trilateration, NoisyRangingDegradesGracefully) {
  const Deployment nodes = grid_deployment(kField, 9);
  const TrilaterationLocalizer loc(nodes, {.model = clean_model()});
  const Vec2 target{22.0, 13.0};
  double clean = 0.0;
  double noisy = 0.0;
  for (std::uint64_t e = 0; e < 20; ++e) {
    clean += distance(loc.localize(sample_at(nodes, target, 0.0, e)).position, target);
    noisy += distance(loc.localize(sample_at(nodes, target, 6.0, e)).position, target);
  }
  EXPECT_LT(clean, noisy);
  // The Sec. 2 fragility claim: 6 dB shadowing on beta = 4 distorts
  // ranges by lognormal factors; error grows by at least an order of
  // magnitude over the noiseless geometry.
  EXPECT_GT(noisy, clean * 10.0);
  EXPECT_GT(noisy / 20.0, 1.0);
}

TEST(Trilateration, NodeCountMismatchThrows) {
  const TrilaterationLocalizer loc(grid_deployment(kField, 4), {.model = clean_model()});
  GroupingSampling g(2, 1);
  EXPECT_THROW(loc.localize(g), std::invalid_argument);
}

}  // namespace
}  // namespace fttt
