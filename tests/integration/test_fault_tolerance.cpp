// Fault-tolerance integration (paper Sec. 4.4(3)): FTTT must keep
// producing full-dimension sampling vectors and sane estimates while nodes
// drop out, and degrade gracefully with the dropout rate.
#include <gtest/gtest.h>

#include <array>

#include "sim/montecarlo.hpp"

namespace fttt {
namespace {

ScenarioConfig base_config() {
  ScenarioConfig cfg;
  cfg.sensor_count = 12;
  cfg.duration = 15.0;
  cfg.grid_cell = 2.0;
  return cfg;
}

TEST(FaultTolerance, TracksThroughModerateDropout) {
  ScenarioConfig cfg = base_config();
  cfg.dropout_probability = 0.2;
  const std::array<Method, 1> methods{Method::kFttt};
  const auto s = monte_carlo(cfg, methods, 6);
  EXPECT_LT(s[0].mean_error(), 22.0);
}

TEST(FaultTolerance, ErrorDegradesGracefully) {
  const std::array<Method, 1> methods{Method::kFttt};
  std::vector<double> errors;
  for (double p : {0.0, 0.25, 0.5}) {
    ScenarioConfig cfg = base_config();
    cfg.dropout_probability = p;
    errors.push_back(monte_carlo(cfg, methods, 6)[0].mean_error());
  }
  // Losing half the nodes should cost accuracy...
  EXPECT_GT(errors[2], errors[0]);
  // ...but not catastrophically (still far better than blind guessing).
  EXPECT_LT(errors[2], 30.0);
}

TEST(FaultTolerance, HeavyDropoutStillProducesEstimates) {
  ScenarioConfig cfg = base_config();
  cfg.dropout_probability = 0.8;
  cfg.duration = 8.0;
  const std::array<Method, 2> methods{Method::kFttt, Method::kFtttExtended};
  const TrackingResult r = run_tracking(cfg, methods);
  for (const auto& m : r.methods) {
    ASSERT_EQ(m.estimates.size(), r.times.size());
    for (const Vec2 e : m.estimates) EXPECT_TRUE(cfg.field.contains(e));
  }
}

TEST(FaultTolerance, FaultTolerantFtttBeatsDirectMleUnderDropout) {
  ScenarioConfig cfg = base_config();
  cfg.dropout_probability = 0.3;
  const std::array<Method, 2> methods{Method::kFttt, Method::kDirectMle};
  const auto s = monte_carlo(cfg, methods, 6);
  EXPECT_LT(s[0].mean_error(), s[1].mean_error());
}

}  // namespace
}  // namespace fttt
