// End-to-end quality checks reproducing the paper's headline ordering:
// FTTT tracks more accurately than PM, which beats Direct MLE, under the
// Table 1 noise model. These are statistical assertions over fixed-seed
// Monte-Carlo runs, so they are deterministic.
#include <gtest/gtest.h>

#include <array>

#include "sim/montecarlo.hpp"

namespace fttt {
namespace {

ScenarioConfig paper_config(std::size_t sensors) {
  ScenarioConfig cfg;
  cfg.sensor_count = sensors;
  cfg.duration = 20.0;
  cfg.grid_cell = 2.0;  // coarse enough for test speed
  return cfg;
}

TEST(TrackingQuality, FtttBeatsDirectMleAtTenSensors) {
  const std::array<Method, 2> methods{Method::kFttt, Method::kDirectMle};
  const auto s = monte_carlo(paper_config(10), methods, 6);
  EXPECT_LT(s[0].mean_error(), s[1].mean_error());
}

TEST(TrackingQuality, FtttBeatsPathMatchingAtTenSensors) {
  const std::array<Method, 2> methods{Method::kFttt, Method::kPathMatching};
  const auto s = monte_carlo(paper_config(10), methods, 6);
  EXPECT_LT(s[0].mean_error(), s[1].mean_error());
}

TEST(TrackingQuality, ErrorFallsWithMoreSensors) {
  // Fig. 11(b): mean error decreases as n grows (compare 5 vs 25).
  const std::array<Method, 1> methods{Method::kFttt};
  const auto sparse = monte_carlo(paper_config(5), methods, 6);
  const auto dense = monte_carlo(paper_config(25), methods, 6);
  EXPECT_LT(dense[0].mean_error(), sparse[0].mean_error());
}

TEST(TrackingQuality, MoreSamplingReducesErrorOnBoundedChannel) {
  // Fig. 12(b): k = 3 vs k = 9 at n = 20 under the bounded channel (the
  // flip model the paper's Sec. 5 analysis assumes; under the verbatim
  // Gaussian channel the basic-vector trend inverts — see EXPERIMENTS.md).
  const std::array<Method, 1> methods{Method::kFttt};
  ScenarioConfig low = paper_config(20);
  low.samples_per_group = 3;
  low.channel = Channel::kBounded;
  ScenarioConfig high = paper_config(20);
  high.samples_per_group = 9;
  high.channel = Channel::kBounded;
  const auto s_low = monte_carlo(low, methods, 6);
  const auto s_high = monte_carlo(high, methods, 6);
  EXPECT_LT(s_high[0].mean_error(), s_low[0].mean_error() * 1.02);
}

TEST(TrackingQuality, GaussianChannelInvertsTheSamplingTrend) {
  // Regression pin for the reproduction finding: under Eq. 1's Gaussian
  // noise, growing k floods the basic vector with zeros and error rises.
  const std::array<Method, 1> methods{Method::kFttt};
  ScenarioConfig low = paper_config(20);
  low.samples_per_group = 3;
  ScenarioConfig high = paper_config(20);
  high.samples_per_group = 9;
  const auto s_low = monte_carlo(low, methods, 6);
  const auto s_high = monte_carlo(high, methods, 6);
  EXPECT_GT(s_high[0].mean_error(), s_low[0].mean_error());
}

TEST(TrackingQuality, ExtendedReducesErrorDeviation) {
  // Fig. 12(c)/(d): extended FTTT mainly lowers the stddev of the error.
  const std::array<Method, 2> methods{Method::kFttt, Method::kFtttExtended};
  const auto s = monte_carlo(paper_config(10), methods, 8);
  EXPECT_LT(s[1].stddev_error(), s[0].stddev_error() * 1.05);
  // And does not blow up the mean.
  EXPECT_LT(s[1].mean_error(), s[0].mean_error() * 1.25);
}

TEST(TrackingQuality, StarPolicyShowsWideSeparationAtTableOneRange) {
  // Valuing out-of-range pairs '*' instead of Eq. 6's fill removes the
  // proximity leak at R = 40 too; the paper-sized gaps appear.
  const std::array<Method, 3> methods{Method::kFttt, Method::kPathMatching,
                                      Method::kDirectMle};
  ScenarioConfig cfg = paper_config(30);
  cfg.missing = MissingPolicy::kMissingUnknown;
  const auto s = monte_carlo(cfg, methods, 6);
  EXPECT_GT(s[1].mean_error(), s[0].mean_error() * 1.2);  // PM
  EXPECT_GT(s[2].mean_error(), s[0].mean_error() * 1.2);  // Direct MLE
}

TEST(TrackingQuality, ComparisonOnlyRegimeShowsWideSeparation) {
  // With whole-field sensing coverage the Eq. 6 proximity fill disappears
  // and localization rides on RSS comparisons alone — the regime where
  // the paper's reported FTTT-vs-baseline factors (~2x) appear.
  const std::array<Method, 2> methods{Method::kFttt, Method::kDirectMle};
  ScenarioConfig cfg = paper_config(30);
  cfg.sensing_range = 150.0;
  const auto s = monte_carlo(cfg, methods, 6);
  EXPECT_GT(s[1].mean_error(), s[0].mean_error() * 1.3);
}

TEST(TrackingQuality, FtttErrorIsUsefullyable) {
  // Sanity anchor: mean error with 10 sensors must be far below the
  // field diagonal (blind guessing ~52 m to centre-of-field ~38 m).
  const std::array<Method, 1> methods{Method::kFttt};
  const auto s = monte_carlo(paper_config(10), methods, 6);
  EXPECT_LT(s[0].mean_error(), 20.0);
}

}  // namespace
}  // namespace fttt
