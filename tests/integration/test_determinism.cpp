// Reproducibility contract: the whole experiment pipeline is a pure
// function of (ScenarioConfig, trial), independent of thread scheduling.
#include <gtest/gtest.h>

#include <array>

#include "sim/montecarlo.hpp"
#include "testbed/outdoor.hpp"

namespace fttt {
namespace {

TEST(Determinism, FullPipelineStableAcrossRepeats) {
  ScenarioConfig cfg;
  cfg.sensor_count = 10;
  cfg.duration = 8.0;
  cfg.grid_cell = 2.0;
  const std::array<Method, 4> methods{Method::kFttt, Method::kFtttExtended,
                                      Method::kPathMatching, Method::kDirectMle};
  const auto a = monte_carlo(cfg, methods, 3);
  const auto b = monte_carlo(cfg, methods, 3);
  for (std::size_t m = 0; m < methods.size(); ++m) {
    EXPECT_DOUBLE_EQ(a[m].mean_error(), b[m].mean_error());
    EXPECT_DOUBLE_EQ(a[m].stddev_error(), b[m].stddev_error());
  }
}

TEST(Determinism, SeedChangesResults) {
  ScenarioConfig cfg;
  cfg.sensor_count = 10;
  cfg.duration = 8.0;
  cfg.grid_cell = 2.0;
  const std::array<Method, 1> methods{Method::kFttt};
  const auto a = monte_carlo(cfg, methods, 2);
  cfg.seed += 1;
  const auto b = monte_carlo(cfg, methods, 2);
  EXPECT_NE(a[0].mean_error(), b[0].mean_error());
}

TEST(Determinism, OutdoorRunStableAcrossPoolSizes) {
  OutdoorSystem::Config cfg;
  cfg.grid_cell = 1.5;
  const OutdoorSystem sys(cfg);
  ThreadPool one(1);
  ThreadPool many(8);
  const auto a = sys.run(one);
  const auto b = sys.run(many);
  ASSERT_EQ(a.times.size(), b.times.size());
  for (std::size_t i = 0; i < a.times.size(); ++i) {
    EXPECT_EQ(a.basic[i], b.basic[i]);
    EXPECT_EQ(a.extended[i], b.extended[i]);
  }
}

}  // namespace
}  // namespace fttt
