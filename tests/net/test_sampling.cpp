#include "net/sampling.hpp"

#include <gtest/gtest.h>

#include "net/deployment.hpp"

namespace fttt {
namespace {

SamplingConfig noiseless_config() {
  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 0.0, .d0 = 1.0};
  cfg.sensing_range = 40.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 5;
  return cfg;
}

Deployment two_nodes() {
  return {{0, {0.0, 0.0}}, {1, {30.0, 0.0}}};
}

TEST(CollectGroup, ShapeMatchesConfig) {
  const auto nodes = two_nodes();
  const auto cfg = noiseless_config();
  const NoFaults faults;
  const auto target = [](double) { return Vec2{10.0, 0.0}; };
  const GroupingSampling g = collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(1));
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.instants(), 5u);
  ASSERT_TRUE(g.has(0));
  ASSERT_TRUE(g.has(1));
  EXPECT_EQ(g.column(0).size(), 5u);
  EXPECT_EQ(g.reporting_count(), 2u);
}

TEST(CollectGroup, OutOfRangeNodeIsMissing) {
  const auto nodes = two_nodes();
  const auto cfg = noiseless_config();
  const NoFaults faults;
  // Target 50 m from node 1, 20 m from node 0 (range 40).
  const auto target = [](double) { return Vec2{-20.0, 0.0}; };
  const GroupingSampling g = collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(1));
  EXPECT_TRUE(g.has(0));
  EXPECT_FALSE(g.has(1));
  EXPECT_EQ(g.reporting_count(), 1u);
}

TEST(CollectGroup, FaultedNodeIsMissing) {
  const auto nodes = two_nodes();
  const auto cfg = noiseless_config();
  const PermanentFailures faults({{0, 0}});
  const auto target = [](double) { return Vec2{10.0, 0.0}; };
  const GroupingSampling g = collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(1));
  EXPECT_FALSE(g.has(0));
  EXPECT_TRUE(g.has(1));
}

TEST(CollectGroup, NoiselessStationaryTargetGivesConstantColumns) {
  const auto nodes = two_nodes();
  const auto cfg = noiseless_config();
  const NoFaults faults;
  const auto target = [](double) { return Vec2{10.0, 5.0}; };
  const GroupingSampling g = collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(1));
  for (std::size_t t = 1; t < g.instants(); ++t)
    EXPECT_DOUBLE_EQ(g.column(0)[t], g.column(0)[0]);
}

TEST(CollectGroup, NearerNodeReadsStrongerWithoutNoise) {
  const auto nodes = two_nodes();
  const auto cfg = noiseless_config();
  const NoFaults faults;
  const auto target = [](double) { return Vec2{5.0, 0.0}; };  // nearer node 0
  const GroupingSampling g = collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(1));
  EXPECT_GT(g.column(0)[0], g.column(1)[0]);
}

TEST(CollectGroup, FrozenGroupIgnoresTargetMotion) {
  // Default Def. 3 semantics: the whole group is collected at the
  // epoch-start position even if the target model moves.
  const auto nodes = two_nodes();
  auto cfg = noiseless_config();
  cfg.sample_period = 0.5;
  const NoFaults faults;
  const auto target = [](double t) { return Vec2{5.0 + 10.0 * t, 0.0}; };
  const GroupingSampling g = collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(1));
  for (std::size_t t = 1; t < g.instants(); ++t)
    EXPECT_DOUBLE_EQ(g.column(0)[t], g.column(0)[0]);
}

TEST(CollectGroup, MovingTargetChangesSamplesWithinGroup) {
  const auto nodes = two_nodes();
  auto cfg = noiseless_config();
  cfg.sample_period = 0.5;
  cfg.freeze_target_during_group = false;
  const NoFaults faults;
  // Fast mover: 10 m/s along x, away from node 0.
  const auto target = [](double t) { return Vec2{5.0 + 10.0 * t, 0.0}; };
  const GroupingSampling g = collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(1));
  EXPECT_LT(g.column(0)[4], g.column(0)[0]);  // receding: weaker over time
  EXPECT_GT(g.column(1)[4], g.column(1)[0]);  // approaching: stronger
}

TEST(CollectGroup, ReproducibleFromStream) {
  const auto nodes = two_nodes();
  auto cfg = noiseless_config();
  cfg.model.sigma = 6.0;
  const NoFaults faults;
  const auto target = [](double) { return Vec2{10.0, 0.0}; };
  const GroupingSampling a = collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(42));
  const GroupingSampling b = collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(42));
  for (std::size_t t = 0; t < a.instants(); ++t)
    EXPECT_DOUBLE_EQ(a.column(0)[t], b.column(0)[t]);
}

TEST(CollectGroup, NoiseVariesAcrossInstants) {
  const auto nodes = two_nodes();
  auto cfg = noiseless_config();
  cfg.model.sigma = 6.0;
  const NoFaults faults;
  const auto target = [](double) { return Vec2{10.0, 0.0}; };
  const GroupingSampling g = collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(42));
  bool any_diff = false;
  for (std::size_t t = 1; t < g.instants(); ++t)
    if (g.column(0)[t] != g.column(0)[0]) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(CollectGroup, ClockSkewShiftsMovingTargetSamples) {
  const auto nodes = two_nodes();
  auto no_skew = noiseless_config();
  no_skew.freeze_target_during_group = false;
  auto with_skew = no_skew;
  with_skew.clock_skew = 0.05;
  const NoFaults faults;
  const auto target = [](double t) { return Vec2{5.0 + 10.0 * t, 0.0}; };
  const GroupingSampling a =
      collect_group(nodes, no_skew, faults, 0, 0.0, target, RngStream(7));
  const GroupingSampling b =
      collect_group(nodes, with_skew, faults, 0, 0.0, target, RngStream(7));
  bool any_diff = false;
  for (std::size_t t = 0; t < a.instants(); ++t)
    if (a.column(0)[t] != b.column(0)[t]) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(GroupingSampling, PopcountReportingCountMatchesLegacyScan) {
  // reporting_count() is a popcount over the presence bitmask; pin it
  // against the legacy definition — count the nodes whose column is
  // present — across sizes that straddle the 64-bit mask word boundary
  // and arbitrary set/clear sequences.
  for (std::size_t nodes : {1u, 7u, 63u, 64u, 65u, 130u}) {
    GroupingSampling g(nodes, 3);
    std::size_t toggle = 0;
    for (std::size_t i = 0; i < nodes; i += 2) g.set_column(i);
    for (std::size_t i = 0; i < nodes; i += 5) g.clear_column(i);
    for (std::size_t i = 0; i < nodes; i += 3) {
      g.set_column(i);
      ++toggle;
    }
    (void)toggle;
    std::size_t legacy = 0;
    for (std::size_t i = 0; i < nodes; ++i)
      if (g.has(i)) ++legacy;
    EXPECT_EQ(g.reporting_count(), legacy) << "nodes=" << nodes;
  }
}

TEST(GroupingSampling, ReportingCountSaturatesAndClears) {
  GroupingSampling g(70, 2);
  EXPECT_EQ(g.reporting_count(), 0u);
  for (std::size_t i = 0; i < 70; ++i) g.set_column(i);
  EXPECT_EQ(g.reporting_count(), 70u);
  g.clear_column(69);
  g.clear_column(0);
  EXPECT_EQ(g.reporting_count(), 68u);
  // Setting an already-present column must not double count.
  g.set_column(5);
  EXPECT_EQ(g.reporting_count(), 68u);
}

}  // namespace
}  // namespace fttt
