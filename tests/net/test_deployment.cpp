#include "net/deployment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <stdexcept>

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {100.0, 100.0}};

TEST(GridDeployment, CountAndDenseIds) {
  for (std::size_t n : {1u, 5u, 9u, 10u, 16u, 40u}) {
    const Deployment d = grid_deployment(kField, n);
    ASSERT_EQ(d.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(d[i].id, i);
  }
}

TEST(GridDeployment, AllInsideField) {
  const Deployment d = grid_deployment(kField, 25);
  for (const auto& node : d) EXPECT_TRUE(kField.contains(node.position));
}

TEST(GridDeployment, PerfectSquareIsRegularLattice) {
  const Deployment d = grid_deployment(kField, 16);
  std::set<double> xs;
  std::set<double> ys;
  for (const auto& node : d) {
    xs.insert(node.position.x);
    ys.insert(node.position.y);
  }
  EXPECT_EQ(xs.size(), 4u);
  EXPECT_EQ(ys.size(), 4u);
}

TEST(GridDeployment, ZeroNodes) {
  EXPECT_TRUE(grid_deployment(kField, 0).empty());
}

TEST(RandomDeployment, CountIdsAndBounds) {
  RngStream rng(3);
  const Deployment d = random_deployment(kField, 30, rng);
  ASSERT_EQ(d.size(), 30u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i].id, i);
    EXPECT_TRUE(kField.contains(d[i].position));
  }
}

TEST(RandomDeployment, DifferentStreamsDiffer) {
  RngStream a(3);
  RngStream b(4);
  const Deployment da = random_deployment(kField, 10, a);
  const Deployment db = random_deployment(kField, 10, b);
  bool any_diff = false;
  for (std::size_t i = 0; i < 10; ++i)
    if (!(da[i].position == db[i].position)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(RandomDeployment, Reproducible) {
  RngStream a(3);
  RngStream b(3);
  const Deployment da = random_deployment(kField, 10, a);
  const Deployment db = random_deployment(kField, 10, b);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(da[i].position, db[i].position);
}

TEST(CrossDeployment, NineMotesInPlusShape) {
  const Vec2 c{50.0, 50.0};
  const Deployment d = cross_deployment(c, 10.0);
  ASSERT_EQ(d.size(), 9u);
  EXPECT_EQ(d[0].position, c);
  // Every non-centre mote sits on one of the two axes through the centre.
  for (std::size_t i = 1; i < 9; ++i) {
    const Vec2 rel = d[i].position - c;
    EXPECT_TRUE(rel.x == 0.0 || rel.y == 0.0);
    const double dist = distance(d[i].position, c);
    EXPECT_TRUE(dist == 10.0 || dist == 20.0);
  }
  // Four motes at each ring distance.
  const auto at = [&](double r) {
    return std::count_if(d.begin(), d.end(),
                         [&](const SensorNode& n) { return distance(n.position, c) == r; });
  };
  EXPECT_EQ(at(10.0), 4);
  EXPECT_EQ(at(20.0), 4);
}

TEST(JitteredGridDeployment, StaysInFieldAndNearLattice) {
  RngStream rng(5);
  const Deployment base = grid_deployment(kField, 16);
  RngStream rng2(5);
  const Deployment jit = jittered_grid_deployment(kField, 16, 3.0, rng2);
  ASSERT_EQ(jit.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(kField.contains(jit[i].position));
    EXPECT_LE(distance(jit[i].position, base[i].position), 3.0 * std::sqrt(2.0) + 1e-12);
  }
}

TEST(RandomDeploymentGenerator, MatchesScenarioStreamDiscipline) {
  // kFixed must be byte-identical to what the simulation harness deploys
  // for the same (seed, trial): random_deployment fed
  // RngStream(seed).substream(trial).substream(1).
  const RandomDeploymentGenerator gen(kField, 12);
  for (std::uint64_t trial : {0ULL, 1ULL, 7ULL, 1000ULL}) {
    RngStream rng = RngStream(42).substream(trial).substream(1);
    const Deployment expected = random_deployment(kField, 12, rng);
    const Deployment got = gen.generate(42, trial);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
      EXPECT_EQ(got[i].position, expected[i].position);
    }
  }
}

TEST(RandomDeploymentGenerator, PureFunctionOfSeedAndTrial) {
  const RandomDeploymentGenerator gen(kField, 10, CountModel::kPoisson);
  const Deployment a = gen.generate(7, 3);
  const Deployment b = gen.generate(7, 3);  // no hidden state between calls
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].position, b[i].position);
  // generate_into reuses storage but must produce the same bytes.
  Deployment pooled;
  gen.generate_into(7, 99, pooled);  // dirty the vector with another trial
  gen.generate_into(7, 3, pooled);
  ASSERT_EQ(pooled.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(pooled[i].position, a[i].position);
}

TEST(RandomDeploymentGenerator, PoissonCountsVaryAndStayAboveTwo) {
  const RandomDeploymentGenerator gen(kField, 6, CountModel::kPoisson);
  std::set<std::size_t> counts;
  double total = 0.0;
  const std::size_t trials = 200;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const Deployment d = gen.generate(11, t);
    ASSERT_GE(d.size(), 2u);
    for (std::size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(d[i].id, i);
      EXPECT_TRUE(kField.contains(d[i].position));
    }
    counts.insert(d.size());
    total += static_cast<double>(d.size());
  }
  EXPECT_GT(counts.size(), 3u);  // the count really is random
  const double mean = total / static_cast<double>(trials);
  EXPECT_NEAR(mean, 6.0, 1.0);  // Poisson(6) sample mean, wide tolerance
}

TEST(RandomDeploymentGenerator, RejectsDegenerateInputs) {
  EXPECT_THROW(RandomDeploymentGenerator(kField, 1), std::invalid_argument);
  EXPECT_THROW(RandomDeploymentGenerator(Aabb{{0.0, 0.0}, {0.0, 100.0}}, 10),
               std::invalid_argument);
  EXPECT_THROW(RandomDeploymentGenerator(Aabb{{0.0, 0.0}, {100.0, 0.0}}, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace fttt
