#include "net/sync.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fttt {
namespace {

SyncProtocol::Config base_config() {
  SyncProtocol::Config cfg;
  cfg.drift_ppm_max = 40.0;
  cfg.beacon_interval = 10.0;
  cfg.residual = 0.0002;
  cfg.initial_offset_max = 0.01;
  return cfg;
}

TEST(SyncProtocol, ZeroNodesThrows) {
  EXPECT_THROW(SyncProtocol(0, base_config(), RngStream(1)), std::invalid_argument);
}

TEST(SyncProtocol, BadNodeIdThrows) {
  const SyncProtocol sync(4, base_config(), RngStream(1));
  EXPECT_THROW(sync.offset_at(4, 0.0), std::out_of_range);
}

TEST(SyncProtocol, DriftRatesWithinSpec) {
  const SyncProtocol sync(50, base_config(), RngStream(2));
  for (NodeId n = 0; n < 50; ++n)
    EXPECT_LE(std::abs(sync.drift_rate(n)), 40.0e-6);
}

TEST(SyncProtocol, OffsetGrowsLinearlyBeforeFirstBeacon) {
  const SyncProtocol sync(8, base_config(), RngStream(3));
  for (NodeId n = 0; n < 8; ++n) {
    const double at0 = sync.offset_at(n, 0.0);
    const double at5 = sync.offset_at(n, 5.0);
    EXPECT_NEAR(at5 - at0, sync.drift_rate(n) * 5.0, 1e-12);
  }
}

TEST(SyncProtocol, BeaconCollapsesOffsetToResidual) {
  const SyncProtocol sync(8, base_config(), RngStream(4));
  // Right after the beacon at t = 10: residual plus negligible drift.
  for (NodeId n = 0; n < 8; ++n)
    EXPECT_LE(std::abs(sync.offset_at(n, 10.0 + 1e-6)), 0.0002 + 1e-9);
}

TEST(SyncProtocol, OffsetBoundedBetweenBeacons) {
  const SyncProtocol sync(8, base_config(), RngStream(5));
  // Anywhere past the first beacon: |offset| <= residual + drift*interval.
  const double bound = 0.0002 + 40.0e-6 * 10.0;
  for (double t = 10.0; t < 100.0; t += 0.37)
    EXPECT_LE(sync.worst_offset_at(t), bound + 1e-12) << "t=" << t;
}

TEST(SyncProtocol, NoBeaconsMeansUnboundedDrift) {
  SyncProtocol::Config cfg = base_config();
  cfg.beacon_interval = 0.0;  // never sync
  const SyncProtocol sync(8, cfg, RngStream(6));
  // Offsets keep growing: worst offset at t = 1000 exceeds the bounded
  // case's ceiling (some node has nontrivial drift w.h.p. over 8 draws).
  EXPECT_GT(sync.worst_offset_at(1000.0), 0.0002 + 40.0e-6 * 10.0);
}

TEST(SyncProtocol, ThinnerBeaconsWorsenSync) {
  SyncProtocol::Config tight = base_config();
  tight.beacon_interval = 5.0;
  SyncProtocol::Config loose = base_config();
  loose.beacon_interval = 60.0;
  const SyncProtocol a(16, tight, RngStream(7));
  const SyncProtocol b(16, loose, RngStream(7));
  // Compare just before each protocol's next beacon (worst case).
  EXPECT_LT(a.worst_offset_at(5.0 - 1e-3), b.worst_offset_at(60.0 - 1e-3));
}

TEST(SyncProtocol, DeterministicFromStream) {
  const SyncProtocol a(8, base_config(), RngStream(8));
  const SyncProtocol b(8, base_config(), RngStream(8));
  for (NodeId n = 0; n < 8; ++n)
    EXPECT_DOUBLE_EQ(a.offset_at(n, 33.3), b.offset_at(n, 33.3));
}

}  // namespace
}  // namespace fttt
