#include "net/faults.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace fttt {
namespace {

TEST(NoFaults, AlwaysReports) {
  const NoFaults f;
  for (NodeId n = 0; n < 10; ++n)
    for (std::uint64_t e = 0; e < 10; ++e) EXPECT_TRUE(f.reports(n, e));
}

TEST(BernoulliDropout, ZeroProbabilityNeverDrops) {
  const BernoulliDropout f(0.0, RngStream(1));
  for (NodeId n = 0; n < 20; ++n)
    for (std::uint64_t e = 0; e < 20; ++e) EXPECT_TRUE(f.reports(n, e));
}

TEST(BernoulliDropout, OneProbabilityAlwaysDrops) {
  const BernoulliDropout f(1.0, RngStream(1));
  for (NodeId n = 0; n < 20; ++n)
    for (std::uint64_t e = 0; e < 20; ++e) EXPECT_FALSE(f.reports(n, e));
}

TEST(BernoulliDropout, RateApproximatelyP) {
  const BernoulliDropout f(0.3, RngStream(7));
  int drops = 0;
  const int total = 20000;
  for (int i = 0; i < total; ++i)
    if (!f.reports(static_cast<NodeId>(i % 100), static_cast<std::uint64_t>(i / 100)))
      ++drops;
  EXPECT_NEAR(drops / static_cast<double>(total), 0.3, 0.02);
}

TEST(BernoulliDropout, DeterministicPerNodeEpoch) {
  const BernoulliDropout f(0.5, RngStream(9));
  for (NodeId n = 0; n < 10; ++n)
    for (std::uint64_t e = 0; e < 10; ++e)
      EXPECT_EQ(f.reports(n, e), f.reports(n, e));
}

TEST(BernoulliDropout, IndependentAcrossNodes) {
  const BernoulliDropout f(0.5, RngStream(11));
  // Not all nodes should agree at a given epoch.
  bool any_true = false;
  bool any_false = false;
  for (NodeId n = 0; n < 64; ++n) (f.reports(n, 0) ? any_true : any_false) = true;
  EXPECT_TRUE(any_true);
  EXPECT_TRUE(any_false);
}

TEST(PermanentFailures, DeadAfterDeathEpoch) {
  const PermanentFailures f({{3, 5}, {7, 0}});
  EXPECT_TRUE(f.reports(3, 4));
  EXPECT_FALSE(f.reports(3, 5));
  EXPECT_FALSE(f.reports(3, 100));
  EXPECT_FALSE(f.reports(7, 0));
  EXPECT_TRUE(f.reports(1, 100));  // unlisted nodes live forever
}

TEST(BurstLoss, ZeroEnterNeverDrops) {
  const BurstLoss f(0.0, 0.5, RngStream(13));
  for (NodeId n = 0; n < 10; ++n)
    for (std::uint64_t e = 0; e < 30; ++e) EXPECT_TRUE(f.reports(n, e));
}

TEST(BurstLoss, DropsComeInRuns) {
  // With a tiny exit probability, once a node goes down it stays down for
  // many consecutive epochs: measure the mean run length.
  const BurstLoss f(0.1, 0.2, RngStream(17));
  int runs = 0;
  int down_epochs = 0;
  for (NodeId n = 0; n < 50; ++n) {
    bool prev_up = true;
    for (std::uint64_t e = 0; e < 100; ++e) {
      const bool up = f.reports(n, e);
      if (!up) {
        ++down_epochs;
        if (prev_up) ++runs;
      }
      prev_up = up;
    }
  }
  ASSERT_GT(runs, 0);
  const double mean_run = static_cast<double>(down_epochs) / runs;
  // Geometric with exit 0.2 -> mean run ~5.
  EXPECT_GT(mean_run, 3.0);
  EXPECT_LT(mean_run, 8.0);
}

TEST(BurstLoss, DeterministicReplay) {
  const BurstLoss f(0.2, 0.3, RngStream(19));
  for (std::uint64_t e = 0; e < 20; ++e) EXPECT_EQ(f.reports(4, e), f.reports(4, e));
}

TEST(CompositeFaults, IntersectionSemantics) {
  auto dead3 = std::make_shared<const PermanentFailures>(
      std::vector<std::pair<NodeId, std::uint64_t>>{{3, 0}});
  auto dead5 = std::make_shared<const PermanentFailures>(
      std::vector<std::pair<NodeId, std::uint64_t>>{{5, 0}});
  const CompositeFaults f({dead3, dead5});
  EXPECT_FALSE(f.reports(3, 1));
  EXPECT_FALSE(f.reports(5, 1));
  EXPECT_TRUE(f.reports(4, 1));
}

TEST(CompositeFaults, EmptyAlwaysReports) {
  const CompositeFaults f({});
  EXPECT_TRUE(f.reports(0, 0));
}

}  // namespace
}  // namespace fttt
