#include "net/clustering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/deployment.hpp"

namespace fttt {
namespace {

const Aabb kField{{0.0, 0.0}, {100.0, 100.0}};

TEST(KmeansClusters, EveryNodeInExactlyOneCluster) {
  RngStream rng(1);
  const Deployment nodes = random_deployment(kField, 30, rng);
  const auto clusters = kmeans_clusters(nodes, 5, RngStream(2));
  std::set<NodeId> seen;
  for (const Cluster& c : clusters) {
    EXPECT_FALSE(c.members.empty());
    for (NodeId m : c.members) EXPECT_TRUE(seen.insert(m).second) << "node " << m;
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(KmeansClusters, KClampedToNodeCount) {
  RngStream rng(3);
  const Deployment nodes = random_deployment(kField, 4, rng);
  const auto clusters = kmeans_clusters(nodes, 10, RngStream(4));
  EXPECT_LE(clusters.size(), 4u);
}

TEST(KmeansClusters, EmptyDeploymentThrows) {
  EXPECT_THROW(kmeans_clusters({}, 3, RngStream(1)), std::invalid_argument);
}

TEST(KmeansClusters, GeographicCoherence) {
  // Nodes in two well-separated blobs must split into those blobs.
  Deployment nodes;
  NodeId id = 0;
  RngStream rng(5);
  for (int i = 0; i < 10; ++i)
    nodes.push_back({id++, {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)}});
  for (int i = 0; i < 10; ++i)
    nodes.push_back({id++, {rng.uniform(90.0, 100.0), rng.uniform(90.0, 100.0)}});
  const auto clusters = kmeans_clusters(nodes, 2, RngStream(6));
  ASSERT_EQ(clusters.size(), 2u);
  for (const Cluster& c : clusters) {
    // Every member on the same side as the cluster centroid.
    const bool low = c.centroid.x < 50.0;
    for (NodeId m : c.members) EXPECT_EQ(nodes[m].position.x < 50.0, low);
  }
}

TEST(KmeansClusters, DeterministicFromStream) {
  RngStream rng(7);
  const Deployment nodes = random_deployment(kField, 20, rng);
  const auto a = kmeans_clusters(nodes, 4, RngStream(8));
  const auto b = kmeans_clusters(nodes, 4, RngStream(8));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) EXPECT_EQ(a[c].members, b[c].members);
}

TEST(KmeansClusters, CentroidIsMemberMean) {
  RngStream rng(9);
  const Deployment nodes = random_deployment(kField, 12, rng);
  const auto clusters = kmeans_clusters(nodes, 3, RngStream(10));
  for (const Cluster& c : clusters) {
    Vec2 sum{};
    for (NodeId m : c.members) sum += nodes[m].position;
    const Vec2 mean = sum / static_cast<double>(c.members.size());
    EXPECT_NEAR(c.centroid.x, mean.x, 1e-9);
    EXPECT_NEAR(c.centroid.y, mean.y, 1e-9);
  }
}

TEST(ElectHeads, UniformEnergyPicksCentralMember) {
  Deployment nodes{{0, {0.0, 0.0}}, {1, {10.0, 0.0}}, {2, {5.0, 0.0}}};
  std::vector<Cluster> clusters{{0, 0, {0, 1, 2}, {5.0, 0.0}}};
  elect_heads(clusters, nodes, {1.0, 1.0, 1.0});
  EXPECT_EQ(clusters[0].head, 2u);  // at the centroid
}

TEST(ElectHeads, EnergyOutweighsCentrality) {
  Deployment nodes{{0, {0.0, 0.0}}, {1, {10.0, 0.0}}, {2, {5.0, 0.0}}};
  std::vector<Cluster> clusters{{0, 0, {0, 1, 2}, {5.0, 0.0}}};
  elect_heads(clusters, nodes, {10.0, 1.0, 1.0});  // node 0 has a fresh battery
  EXPECT_EQ(clusters[0].head, 0u);
}

TEST(ElectHeads, EnergySizeMismatchThrows) {
  Deployment nodes{{0, {0.0, 0.0}}, {1, {1.0, 0.0}}};
  std::vector<Cluster> clusters{{0, 0, {0, 1}, {0.5, 0.0}}};
  EXPECT_THROW(elect_heads(clusters, nodes, {1.0}), std::invalid_argument);
}

TEST(ClusterIndex, MapsEveryMember) {
  RngStream rng(11);
  const Deployment nodes = random_deployment(kField, 15, rng);
  const auto clusters = kmeans_clusters(nodes, 3, RngStream(12));
  const auto index = cluster_index(clusters, nodes.size());
  for (const Cluster& c : clusters)
    for (NodeId m : c.members) EXPECT_EQ(index[m], c.id);
}

}  // namespace
}  // namespace fttt
