#include "net/energy.hpp"

#include <algorithm>
#include <span>

#include <gtest/gtest.h>

namespace fttt {
namespace {

GroupingSampling group_with(std::size_t nodes, std::size_t reporting, std::size_t k) {
  GroupingSampling g(nodes, k);
  for (std::size_t i = 0; i < reporting; ++i) {
    std::span<double> column = g.set_column(i);
    std::fill(column.begin(), column.end(), -50.0);
  }
  return g;
}

TEST(EnergyModel, ReportBytesScaleWithK) {
  const EnergyModel m;
  EXPECT_EQ(m.report_bytes(5), m.header_bytes + 10);
  EXPECT_GT(m.report_bytes(9), m.report_bytes(3));
}

TEST(EnergyModel, NodeEpochCostGrowsLinearlyInK) {
  const EnergyModel m;
  const double e3 = m.node_epoch_mj(3);
  const double e6 = m.node_epoch_mj(6);
  const double e9 = m.node_epoch_mj(9);
  EXPECT_NEAR(e9 - e6, e6 - e3, 1e-12);  // constant marginal cost per sample
  EXPECT_GT(e6, e3);
}

TEST(EnergyModel, StationCostScalesWithReporting) {
  const EnergyModel m;
  EXPECT_DOUBLE_EQ(m.station_epoch_mj(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.station_epoch_mj(5, 10), 10.0 * m.station_epoch_mj(5, 1));
}

TEST(EnergyLedger, ChargesOnlyReportingNodes) {
  EnergyLedger a;
  EnergyLedger b;
  a.charge_epoch(group_with(10, 10, 5), 0.0);
  b.charge_epoch(group_with(10, 5, 5), 0.0);
  EXPECT_DOUBLE_EQ(b.node_total_mj(), a.node_total_mj() / 2.0);
}

TEST(EnergyLedger, IdleChargedToAllNodes) {
  EnergyLedger ledger;
  ledger.charge_epoch(group_with(10, 0, 5), 1.0);
  const EnergyModel m;
  EXPECT_DOUBLE_EQ(ledger.node_total_mj(), 10.0 * m.idle_per_s_mj);
  EXPECT_DOUBLE_EQ(ledger.station_total_mj(), 0.0);
}

TEST(EnergyLedger, PerLocalizationAverage) {
  EnergyLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.per_localization_mj(), 0.0);
  ledger.charge_epoch(group_with(4, 4, 5), 0.5);
  ledger.charge_epoch(group_with(4, 4, 5), 0.5);
  EXPECT_EQ(ledger.epochs(), 2u);
  EXPECT_NEAR(ledger.per_localization_mj(), ledger.total_mj() / 2.0, 1e-12);
}

TEST(EnergyLedger, KTradeoffIsMeasurable) {
  // The cost of doubling k is visible but sublinear in the whole budget
  // (idle and headers amortize) — the "limited system cost" claim.
  EnergyLedger k3;
  EnergyLedger k9;
  for (int e = 0; e < 100; ++e) {
    k3.charge_epoch(group_with(10, 6, 3), 0.5);
    k9.charge_epoch(group_with(10, 6, 9), 0.5);
  }
  EXPECT_GT(k9.total_mj(), k3.total_mj());
  EXPECT_LT(k9.total_mj(), 3.0 * k3.total_mj());
}

}  // namespace
}  // namespace fttt
