#include "net/aggregation.hpp"

#include <gtest/gtest.h>

#include "net/deployment.hpp"

namespace fttt {
namespace {

SampleReport make_report(NodeId node, std::uint64_t epoch, std::size_t k,
                         double send_time = 0.5) {
  SampleReport r;
  r.node = node;
  r.epoch = epoch;
  r.samples.assign(k, -50.0);
  r.send_time = send_time;
  return r;
}

TEST(LossyLink, ZeroLossDeliversEverything) {
  const LossyLink link({.loss_probability = 0.0}, RngStream(1));
  for (NodeId n = 0; n < 20; ++n)
    EXPECT_TRUE(link.transmit(make_report(n, 0, 5)).has_value());
}

TEST(LossyLink, FullLossDeliversNothing) {
  const LossyLink link({.loss_probability = 1.0}, RngStream(1));
  for (NodeId n = 0; n < 20; ++n)
    EXPECT_FALSE(link.transmit(make_report(n, 0, 5)).has_value());
}

TEST(LossyLink, LatencyWithinConfiguredBounds) {
  const LossyLink link({.loss_probability = 0.0, .latency_min = 0.01, .latency_max = 0.02},
                       RngStream(2));
  for (NodeId n = 0; n < 50; ++n) {
    const auto d = link.transmit(make_report(n, 3, 5, 1.0));
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(d->arrival_time, 1.01);
    EXPECT_LT(d->arrival_time, 1.02);
  }
}

TEST(LossyLink, DeterministicPerNodeEpoch) {
  const LossyLink link({.loss_probability = 0.5}, RngStream(3));
  for (NodeId n = 0; n < 20; ++n) {
    const auto a = link.transmit(make_report(n, 7, 5));
    const auto b = link.transmit(make_report(n, 7, 5));
    EXPECT_EQ(a.has_value(), b.has_value());
    if (a && b) EXPECT_DOUBLE_EQ(a->arrival_time, b->arrival_time);
  }
}

TEST(BaseStation, ConstructorValidation) {
  EXPECT_THROW(BaseStation(0, 5, 0.5), std::invalid_argument);
  EXPECT_THROW(BaseStation(4, 5, 0.0), std::invalid_argument);
}

TEST(BaseStation, AssemblesOnTimeReports) {
  BaseStation station(3, 5, 0.5);
  station.receive({make_report(0, 0, 5), 0.2}, 0.0);
  station.receive({make_report(2, 0, 5), 0.4}, 0.0);
  const GroupingSampling g = station.assemble();
  EXPECT_TRUE(g.has(0));
  EXPECT_FALSE(g.has(1));
  EXPECT_TRUE(g.has(2));
  EXPECT_EQ(g.instants(), 5u);
  EXPECT_EQ(g.node_count(), 3u);
}

TEST(BaseStation, LateReportsDiscarded) {
  BaseStation station(2, 5, 0.5);
  station.receive({make_report(0, 0, 5), 0.9}, 0.0);  // deadline 0.5
  EXPECT_EQ(station.late_reports(), 1u);
  const GroupingSampling g = station.assemble();
  EXPECT_FALSE(g.has(0));
}

TEST(BaseStation, DuplicatesAndMalformedCounted) {
  BaseStation station(2, 5, 0.5);
  station.receive({make_report(0, 0, 5), 0.1}, 0.0);
  station.receive({make_report(0, 0, 5), 0.2}, 0.0);  // duplicate
  station.receive({make_report(1, 0, 3), 0.1}, 0.0);  // wrong k
  station.receive({make_report(9, 0, 5), 0.1}, 0.0);  // unknown node
  EXPECT_EQ(station.duplicate_reports(), 1u);
  EXPECT_EQ(station.malformed_reports(), 2u);
}

TEST(BaseStation, AssembleResetsBuffer) {
  BaseStation station(2, 5, 0.5);
  station.receive({make_report(0, 0, 5), 0.1}, 0.0);
  station.assemble();
  const GroupingSampling next = station.assemble();
  EXPECT_FALSE(next.has(0));
}

TEST(EndToEnd, BaseStationPathMatchesDirectCollectionWhenPerfect) {
  const Deployment nodes{{0, {0.0, 0.0}}, {1, {30.0, 0.0}}};
  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  cfg.sensing_range = 100.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 4;
  const NoFaults faults;
  const LossyLink perfect({.loss_probability = 0.0, .latency_min = 0.001,
                           .latency_max = 0.002},
                          RngStream(9));
  const auto target = [](double) { return Vec2{10.0, 0.0}; };

  const GroupingSampling direct =
      collect_group(nodes, cfg, faults, 0, 0.0, target, RngStream(42));
  const GroupingSampling via = collect_group_via_basestation(
      nodes, cfg, faults, perfect, /*deadline=*/1.0, 0, 0.0, target, RngStream(42));

  ASSERT_TRUE(via.has(0) && via.has(1));
  for (std::size_t t = 0; t < cfg.samples_per_group; ++t) {
    EXPECT_DOUBLE_EQ(via.column(0)[t], direct.column(0)[t]);
    EXPECT_DOUBLE_EQ(via.column(1)[t], direct.column(1)[t]);
  }
}

TEST(EndToEnd, LossyLinkDropsColumns) {
  const Aabb field{{0.0, 0.0}, {50.0, 50.0}};
  const Deployment nodes = grid_deployment(field, 16);
  SamplingConfig cfg;
  cfg.model = PathLossModel{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  cfg.sensing_range = 200.0;
  cfg.sample_period = 0.1;
  cfg.samples_per_group = 4;
  const NoFaults faults;
  const LossyLink lossy({.loss_probability = 0.4}, RngStream(10));
  const auto target = [](double) { return Vec2{25.0, 25.0}; };

  std::size_t delivered = 0;
  const int epochs = 50;
  for (int e = 0; e < epochs; ++e) {
    const GroupingSampling g = collect_group_via_basestation(
        nodes, cfg, faults, lossy, 1.0, static_cast<std::uint64_t>(e), 0.0, target,
        RngStream(42).substream(static_cast<std::uint64_t>(e)));
    delivered += g.reporting_count();
  }
  const double rate = static_cast<double>(delivered) / (16.0 * epochs);
  EXPECT_NEAR(rate, 0.6, 0.05);
}

}  // namespace
}  // namespace fttt
