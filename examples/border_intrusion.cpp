// Border intrusion monitoring: the workload the paper's introduction
// motivates — detect an intruder crossing a guarded strip and hand the
// track to a response team.
//
// A 200 x 60 m border strip is instrumented with a jittered grid of 24
// sensors. An intruder enters from the north edge, cuts across the strip
// at a shallow angle and leaves south. The application:
//   1. tracks with extended FTTT (quantified vectors for a smooth trace),
//   2. raises an alarm when the estimated track first crosses the
//      mid-strip tripwire (y = 30),
//   3. reports where it would intercept, against the ground truth.
#include <iostream>
#include <optional>

#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "core/tracker.hpp"
#include "geometry/polyline.hpp"
#include "mobility/path_trace.hpp"
#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"
#include "rf/uncertainty.hpp"

int main() {
  using namespace fttt;

  const Aabb strip{{0.0, 0.0}, {200.0, 60.0}};
  const double tripwire_y = 30.0;
  const PathLossModel model{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  const double eps = 1.0;

  RngStream rng(777);
  const Deployment sensors = jittered_grid_deployment(strip, 24, 4.0, rng);

  const double C = uncertainty_constant(eps, model.beta, model.sigma);
  auto map = std::make_shared<const FaceMap>(FaceMap::build(sensors, C, strip, 1.0));
  std::cout << "border strip instrumented: " << sensors.size() << " sensors, "
            << map->face_count() << " faces, C = " << C << "\n";

  FtttTracker tracker(map, FtttTracker::Config{VectorMode::kExtended, eps, true, 0.5});

  // The intruder: enters at the top-left, exits bottom-right at ~2 m/s.
  const Polyline intrusion({{20.0, 60.0}, {80.0, 35.0}, {150.0, 20.0}, {185.0, 0.0}});
  const PathTrace intruder(intrusion, 1.5, 2.5, rng.substream(1));

  SamplingConfig sampling;
  sampling.model = model;
  sampling.sensing_range = 45.0;
  sampling.sample_period = 0.1;
  sampling.samples_per_group = 7;  // k chosen via theory::required_sampling_times
  const BernoulliDropout faults(0.05, rng.substream(2));  // lossy field radios

  std::vector<Vec2> truth_points;
  std::vector<Vec2> estimates;
  RunningStats errors;
  std::optional<double> alarm_time;
  std::optional<Vec2> alarm_position;

  const double period = 0.5;
  const auto epochs = static_cast<std::uint64_t>(intruder.duration() / period);
  for (std::uint64_t e = 0; e < epochs; ++e) {
    const double t0 = period * static_cast<double>(e);
    const GroupingSampling group =
        collect_group(sensors, sampling, faults, e, t0,
                      [&](double t) { return intruder.position_at(t); },
                      rng.substream(3, e));
    const TrackEstimate est = tracker.localize(group);
    const Vec2 truth = intruder.position_at(t0);
    truth_points.push_back(truth);
    estimates.push_back(est.position);
    errors.add(distance(est.position, truth));

    if (!alarm_time && est.position.y <= tripwire_y) {
      alarm_time = t0;
      alarm_position = est.position;
    }
  }

  AsciiPlot plot(strip, 100, 24);
  plot.polyline(truth_points, '.');
  plot.scatter(estimates, 'o');
  std::vector<Vec2> sensor_pos;
  for (const auto& s : sensors) sensor_pos.push_back(s.position);
  plot.scatter(sensor_pos, '^');
  std::cout << "\nlegend: . true path   o FTTT estimate   ^ sensor\n" << plot.render();

  std::cout << "\nmean tracking error: " << errors.mean() << " m (stddev "
            << errors.stddev() << ")\n";
  if (alarm_time) {
    // Ground truth tripwire crossing for comparison.
    double truth_cross = -1.0;
    for (std::size_t i = 1; i < truth_points.size(); ++i)
      if (truth_points[i - 1].y > tripwire_y && truth_points[i].y <= tripwire_y)
        truth_cross = period * static_cast<double>(i);
    std::cout << "ALARM: estimated tripwire crossing at t = " << *alarm_time
              << " s, position " << *alarm_position << "\n"
              << "       true crossing at t = " << truth_cross << " s\n";
  } else {
    std::cout << "no tripwire crossing detected (unexpected)\n";
  }
  return alarm_time ? 0 : 1;
}
