// Campus outdoor walk: the paper's Sec. 7.3 system evaluation as an
// application. Nine simulated IRIS motes in a cross "+" on a playground;
// a walker carries a 4 kHz piezo source along a "⊔" trace at changeable
// speed. Basic and extended FTTT track the walk; the output mirrors
// Fig. 13(c)/(d): truth plus the two estimated trajectories, side by side.
#include <iostream>

#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "testbed/outdoor.hpp"

int main() {
  using namespace fttt;

  OutdoorSystem::Config cfg;  // defaults = the paper's rig
  const OutdoorSystem system(cfg);
  std::cout << "simulated outdoor system: 9 IRIS motes in a cross (+), spacing "
            << cfg.spacing << " m\n"
            << "acoustic source: ref " << cfg.acoustic.ref_power_dbm << " dB @ 1 m, "
            << "attenuation exponent " << cfg.acoustic.beta << ", noise sigma "
            << cfg.acoustic.sigma << " dB\n"
            << "mote ADC step " << cfg.mote.adc_step_db << " dB, clock skew +/-"
            << cfg.mote.clock_skew << " s, packet loss "
            << cfg.mote.packet_loss * 100.0 << " %\n\n";

  const OutdoorSystem::Result r = system.run();
  std::cout << "walk duration " << r.times.back() << " s, " << r.times.size()
            << " localizations over " << r.faces << " faces\n\n";

  const auto render = [&](const char* title, const std::vector<Vec2>& est) {
    AsciiPlot plot(cfg.field, 72, 26);
    plot.polyline(r.walked_path.vertices(), '.');
    plot.scatter(est, 'o');
    std::cout << title << "  (. true path, o estimates)\n" << plot.render() << "\n";
  };
  render("basic FTTT   -- Fig. 13(c)", r.basic);
  render("extended FTTT -- Fig. 13(d)", r.extended);

  TextTable table({"tracker", "mean err (m)", "stddev (m)", "p95 (m)", "max (m)"});
  const auto row = [&](const char* name, const std::vector<double>& e) {
    table.add_row({name, TextTable::num(mean_of(e), 2), TextTable::num(stddev_of(e), 2),
                   TextTable::num(percentile_of(e, 95.0), 2),
                   TextTable::num(*std::max_element(e.begin(), e.end()), 2)});
  };
  row("basic FTTT", r.basic_error);
  row("extended FTTT", r.extended_error);
  std::cout << table;
  return 0;
}
