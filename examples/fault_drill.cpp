// Fault drill: exercise the fault-tolerance machinery of Sec. 4.4(3)
// under an escalating failure scenario.
//
// A 16-sensor network tracks a random-waypoint target for 60 s while:
//   - every node suffers 10 % transient packet loss throughout,
//   - at t = 20 s two nodes die permanently (battery),
//   - from t = 40 s a jammer causes correlated burst losses.
// The drill reports how the tracking error and the '*' (unknowable
// component) count evolve across the three phases.
#include <iostream>
#include <memory>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/tracker.hpp"
#include "mobility/waypoint.hpp"
#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"
#include "rf/uncertainty.hpp"

int main() {
  using namespace fttt;

  const Aabb field{{0.0, 0.0}, {100.0, 100.0}};
  const PathLossModel model{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  const double eps = 1.0;
  RngStream rng(424242);

  const Deployment sensors = grid_deployment(field, 16);
  const double C = uncertainty_constant(eps, model.beta, model.sigma);
  auto map = std::make_shared<const FaceMap>(FaceMap::build(sensors, C, field, 1.0));
  FtttTracker tracker(map, FtttTracker::Config{VectorMode::kExtended, eps, true, 0.5});

  // Composite fault model: transient loss + two battery deaths at epoch 40
  // (t = 20 s) + burst jamming expressed as a second dropout layer that we
  // switch on by epoch below.
  const double period = 0.5;
  auto transient = std::make_shared<const BernoulliDropout>(0.10, rng.substream(1));
  auto deaths = std::make_shared<const PermanentFailures>(
      std::vector<std::pair<NodeId, std::uint64_t>>{{5, 40}, {10, 40}});
  auto jammer = std::make_shared<const BurstLoss>(0.25, 0.3, rng.substream(2));

  /// Phase-aware model: the jammer only acts from epoch 80 (t = 40 s).
  class DrillFaults final : public FaultModel {
   public:
    DrillFaults(std::shared_ptr<const FaultModel> always,
                std::shared_ptr<const FaultModel> deaths,
                std::shared_ptr<const FaultModel> late, std::uint64_t late_from)
        : always_(std::move(always)), deaths_(std::move(deaths)),
          late_(std::move(late)), late_from_(late_from) {}
    bool reports(NodeId n, std::uint64_t e) const override {
      if (!always_->reports(n, e) || !deaths_->reports(n, e)) return false;
      return e < late_from_ || late_->reports(n, e);
    }

   private:
    std::shared_ptr<const FaultModel> always_;
    std::shared_ptr<const FaultModel> deaths_;
    std::shared_ptr<const FaultModel> late_;
    std::uint64_t late_from_;
  };
  const DrillFaults faults(transient, deaths, jammer, 80);

  const RandomWaypoint target(WaypointConfig{field, 1.0, 5.0, 0.0, 60.0}, rng.substream(3));
  SamplingConfig sampling;
  sampling.model = model;
  sampling.sensing_range = 40.0;
  sampling.sample_period = 0.1;
  sampling.samples_per_group = 5;

  struct Phase {
    const char* name;
    RunningStats error;
    RunningStats missing_nodes;
    RunningStats star_components;
  };
  Phase phases[3] = {{"0-20 s: transient loss only", {}, {}, {}},
                     {"20-40 s: + two nodes dead", {}, {}, {}},
                     {"40-60 s: + burst jammer", {}, {}, {}}};

  for (std::uint64_t e = 0; e < 120; ++e) {
    const double t0 = period * static_cast<double>(e);
    const GroupingSampling group =
        collect_group(sensors, sampling, faults, e, t0,
                      [&](double t) { return target.position_at(t); },
                      rng.substream(4, e));
    const SamplingVector vd = build_sampling_vector(group, eps, VectorMode::kExtended);
    const TrackEstimate est = tracker.localize(group);

    Phase& phase = phases[e < 40 ? 0 : (e < 80 ? 1 : 2)];
    phase.error.add(distance(est.position, target.position_at(t0)));
    phase.missing_nodes.add(
        static_cast<double>(sensors.size() - group.reporting_count()));
    phase.star_components.add(static_cast<double>(vd.unknown_count()));
  }

  TextTable table({"phase", "mean err (m)", "stddev", "missing nodes/epoch",
                   "'*' components/epoch"});
  for (const Phase& p : phases)
    table.add_row({p.name, TextTable::num(p.error.mean(), 2),
                   TextTable::num(p.error.stddev(), 2),
                   TextTable::num(p.missing_nodes.mean(), 2),
                   TextTable::num(p.star_components.mean(), 2)});
  std::cout << table << "\n"
            << "fallbacks to exhaustive matching: " << tracker.stats().fallbacks << " of "
            << tracker.stats().localizations << " localizations\n";
  return 0;
}
