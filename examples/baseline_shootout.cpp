// Baseline shootout: every localizer in the library on the same scenario.
//
// One deployment, one Gauss-Markov target, one stream of grouping
// samplings — consumed in parallel by FTTT (basic + extended), the
// sequence/rank and pairwise formulations of Direct MLE, PM, weighted
// centroid and RSS trilateration. Prints a league table of error and
// smoothness metrics; a compact demonstration of why the uncertain-area
// representation earns its preprocessing cost.
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/direct_mle.hpp"
#include "baselines/path_matching.hpp"
#include "baselines/range_based.hpp"
#include "baselines/sequence_localizer.hpp"
#include "common/table.hpp"
#include "core/tracker.hpp"
#include "mobility/gauss_markov.hpp"
#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"
#include "rf/uncertainty.hpp"
#include "sim/metrics.hpp"

int main() {
  using namespace fttt;

  const Aabb field{{0.0, 0.0}, {100.0, 100.0}};
  PathLossModel model{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  const double eps = 1.0;
  const std::size_t k = 5;
  RngStream rng(20120625);

  const Deployment sensors = random_deployment(field, 16, rng);

  // Bounded channel: the regime where the uncertain-area dichotomy is
  // exact (see EXPERIMENTS.md "Sensing channels").
  const double C = uncertainty_constant(eps, model.beta, model.sigma);
  model.noise = NoiseKind::kBounded;
  model.bounded_amplitude = bounded_noise_amplitude(C, model.beta);

  auto uncertain = std::make_shared<const FaceMap>(FaceMap::build(sensors, C, field, 1.0));
  auto bisector = std::make_shared<const FaceMap>(FaceMap::build(sensors, 1.0, field, 1.0));
  std::cout << "deployment: 16 sensors, C = " << C << ", " << uncertain->face_count()
            << " uncertain faces / " << bisector->face_count() << " bisector faces\n";

  // The contestants.
  auto fttt = std::make_shared<FtttTracker>(
      uncertain, FtttTracker::Config{VectorMode::kBasic, eps, true, 0.5});
  auto fttt_ext = std::make_shared<FtttTracker>(
      uncertain, FtttTracker::Config{VectorMode::kExtended, eps, true, 0.5});
  auto mle_pairwise = std::make_shared<DirectMleTracker>(bisector, eps);
  auto mle_ranks = std::make_shared<SequenceLocalizer>(bisector);
  PathMatchingTracker::Config pm_cfg;
  pm_cfg.eps = eps;
  auto pm = std::make_shared<PathMatchingTracker>(bisector, pm_cfg);
  auto centroid = std::make_shared<WeightedCentroidLocalizer>(sensors);
  auto trilat = std::make_shared<TrilaterationLocalizer>(
      sensors, TrilaterationLocalizer::Config{.model = model});

  struct Contestant {
    const char* name;
    std::function<Vec2(const GroupingSampling&)> localize;
    std::vector<Vec2> estimates;
  };
  std::vector<Contestant> field_of_play;
  field_of_play.push_back({"FTTT (basic)", [&](const GroupingSampling& g) {
                             return fttt->localize(g).position;
                           }, {}});
  field_of_play.push_back({"FTTT (extended)", [&](const GroupingSampling& g) {
                             return fttt_ext->localize(g).position;
                           }, {}});
  field_of_play.push_back({"PM (path matching)", [&](const GroupingSampling& g) {
                             return pm->localize(g).position;
                           }, {}});
  field_of_play.push_back({"Direct MLE (pairwise)", [&](const GroupingSampling& g) {
                             return mle_pairwise->localize(g).position;
                           }, {}});
  field_of_play.push_back({"Direct MLE (rank/tau)", [&](const GroupingSampling& g) {
                             return mle_ranks->localize(g).position;
                           }, {}});
  field_of_play.push_back({"weighted centroid", [&](const GroupingSampling& g) {
                             return centroid->localize(g).position;
                           }, {}});
  field_of_play.push_back({"RSS trilateration", [&](const GroupingSampling& g) {
                             return trilat->localize(g).position;
                           }, {}});

  // The shared world.
  GaussMarkovConfig gm;
  gm.field = field;
  gm.duration = 60.0;
  const GaussMarkov target(gm, rng.substream(1));
  SamplingConfig sampling;
  sampling.model = model;
  sampling.sensing_range = 40.0;
  sampling.sample_period = 0.1;
  sampling.samples_per_group = k;
  const NoFaults faults;

  std::vector<Vec2> truth;
  for (std::uint64_t e = 0; e < 120; ++e) {
    const double t0 = 0.5 * static_cast<double>(e);
    const GroupingSampling group =
        collect_group(sensors, sampling, faults, e, t0,
                      [&](double t) { return target.position_at(t); },
                      rng.substream(2, e));
    truth.push_back(target.position_at(t0));
    for (auto& c : field_of_play) c.estimates.push_back(c.localize(group));
  }

  TextTable t({"localizer", "mean (m)", "rmse", "p95", "max", "turn energy"});
  for (const auto& c : field_of_play) {
    const ErrorMetrics em = error_metrics(c.estimates, truth);
    const SmoothnessMetrics sm = smoothness_metrics(c.estimates);
    t.add_row({c.name, TextTable::num(em.mean, 2), TextTable::num(em.rmse, 2),
               TextTable::num(em.p95, 2), TextTable::num(em.max, 2),
               TextTable::num(sm.turn_energy, 2)});
  }
  std::cout << '\n' << t;
  return 0;
}
