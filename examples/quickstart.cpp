// Quickstart: the smallest complete FTTT application.
//
// Deploys 10 sensors at random in a 100x100 m field, builds the face map
// once (preprocessing), then tracks a random-waypoint target for 30 s with
// the basic FTTT tracker, printing each localization and the run summary.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/tracker.hpp"
#include "mobility/waypoint.hpp"
#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"
#include "rf/uncertainty.hpp"

int main() {
  using namespace fttt;

  // 1. The world: field, signal model, sensors.
  const Aabb field{{0.0, 0.0}, {100.0, 100.0}};
  const PathLossModel model{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  const double eps = 1.0;  // sensing resolution (dBm)

  RngStream rng(2012);
  const Deployment sensors = random_deployment(field, 10, rng);

  // 2. Preprocessing: derive the uncertainty constant C from the noise
  //    model and divide the field into faces (paper Sec. 3.2 + 4.3).
  const double C = uncertainty_constant(eps, model.beta, model.sigma);
  std::cout << "uncertainty constant C = " << C << "\n";
  auto map = std::make_shared<const FaceMap>(FaceMap::build(sensors, C, field, 1.0));
  std::cout << "face map: " << map->face_count() << " faces over "
            << map->grid().cell_count() << " cells\n\n";

  // 3. The tracker (basic mode, heuristic matching with warm starts).
  FtttTracker tracker(map, FtttTracker::Config{VectorMode::kBasic, eps, true, 0.5});

  // 4. A target and the sampling loop: one grouping sampling (k = 5 RSS
  //    samples per sensor) every 0.5 s.
  const RandomWaypoint target(WaypointConfig{field, 1.0, 5.0, 0.0, 30.0}, rng.substream(1));
  SamplingConfig sampling;
  sampling.model = model;
  sampling.sensing_range = 40.0;
  sampling.sample_period = 0.1;  // 10 Hz
  sampling.samples_per_group = 5;
  const NoFaults faults;

  TextTable table({"t (s)", "true x", "true y", "est x", "est y", "error (m)"});
  RunningStats errors;
  for (std::uint64_t epoch = 0; epoch < 60; ++epoch) {
    const double t0 = 0.5 * static_cast<double>(epoch);
    const GroupingSampling group =
        collect_group(sensors, sampling, faults, epoch, t0,
                      [&](double t) { return target.position_at(t); },
                      rng.substream(2, epoch));
    const TrackEstimate est = tracker.localize(group);
    const Vec2 truth = target.position_at(t0);
    const double err = distance(est.position, truth);
    errors.add(err);
    if (epoch % 6 == 0)
      table.add_row({TextTable::num(t0, 1), TextTable::num(truth.x, 1),
                     TextTable::num(truth.y, 1), TextTable::num(est.position.x, 1),
                     TextTable::num(est.position.y, 1), TextTable::num(err, 2)});
  }

  std::cout << table << "\n";
  std::cout << "localizations: " << errors.count() << "\n"
            << "mean error:    " << errors.mean() << " m\n"
            << "error stddev:  " << errors.stddev() << " m\n"
            << "worst error:   " << errors.max() << " m\n";
  return 0;
}
