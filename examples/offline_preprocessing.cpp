// Offline preprocessing pipeline: what a deployment crew runs before
// going to the field (paper Sec. 4.3 — the division is computed once and
// stored at base stations / cluster heads).
//
//   1. survey: load the sensor positions (here: a jittered grid),
//   2. divide: adaptive double-level grid division (ref [29]) with the
//      flip-calibrated uncertainty constant,
//   3. persist: save the FTTTMAP1 file an operator would flash,
//   4. verify: reload the artifact, check integrity and spot-check that
//      the reloaded division localizes correctly,
//   5. report: storage figures for the deployment document.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "core/adaptive_grid.hpp"
#include "core/facemap_io.hpp"
#include "core/tracker.hpp"
#include "net/deployment.hpp"
#include "net/faults.hpp"
#include "net/sampling.hpp"
#include "rf/uncertainty.hpp"

int main() {
  using namespace fttt;

  // 1. Survey.
  const Aabb field{{0.0, 0.0}, {100.0, 100.0}};
  RngStream rng(100);
  const Deployment sensors = jittered_grid_deployment(field, 10, 5.0, rng);
  PathLossModel model{.ref_power_dbm = -40.0, .beta = 4.0, .sigma = 6.0, .d0 = 1.0};
  const double eps = 1.0;
  const std::size_t k = 5;

  // 2. Divide. This rig runs the bounded channel (step 4), whose flip
  // region is exactly the Eq. 3 annulus. Note the savings report: with
  // C(10,2) = 45 pairs the annuli blanket a 100 m field and adaptive
  // probing barely pays — it shines on the few-node local maps cluster
  // heads store (see DistributedTracker), which is where Sec. 4.3 puts
  // the division anyway. The deployment doc records the measured figure.
  const double C = uncertainty_constant(eps, model.beta, model.sigma);
  const AdaptiveBuildResult built = build_facemap_adaptive(sensors, C, field, 0.5, 4);
  std::cout << "division: C = " << C << ", " << built.map.face_count() << " faces, "
            << built.evaluations << " signature evaluations ("
            << TextTable::num(built.savings() * 100.0, 1)
            << " % saved vs uniform, " << built.refined_blocks << "/"
            << built.total_blocks << " blocks refined)\n";

  // 3. Persist.
  const std::string artifact = "fttt_deployment_map.bin";
  save_facemap(built.map, artifact);

  // 4. Verify: reload and spot-check localization with the artifact.
  const FaceMap reloaded = load_facemap(artifact);
  std::cout << "artifact: " << artifact << " reloaded, " << reloaded.face_count()
            << " faces, Theorem-1 link fraction "
            << TextTable::num(reloaded.theorem1_link_fraction(), 3) << "\n";

  auto map = std::make_shared<const FaceMap>(std::move(reloaded));
  FtttTracker tracker(map, FtttTracker::Config{VectorMode::kExtended, eps, true, 0.5});

  model.noise = NoiseKind::kBounded;
  model.bounded_amplitude = bounded_noise_amplitude(
      uncertainty_constant(eps, model.beta, model.sigma), model.beta);
  SamplingConfig sampling;
  sampling.model = model;
  sampling.sensing_range = 40.0;
  sampling.sample_period = 0.1;
  sampling.samples_per_group = k;
  const NoFaults faults;

  TextTable t({"checkpoint", "true position", "estimate", "error (m)"});
  int checkpoint = 0;
  for (Vec2 target : {Vec2{22.0, 37.0}, Vec2{51.0, 68.0}, Vec2{83.0, 19.0}}) {
    const GroupingSampling g =
        collect_group(sensors, sampling, faults, static_cast<std::uint64_t>(checkpoint),
                      0.0, [&](double) { return target; },
                      rng.substream(static_cast<std::uint64_t>(checkpoint)));
    const TrackEstimate e = tracker.localize(g);
    std::ostringstream truth_s;
    truth_s << target;
    std::ostringstream est_s;
    est_s << e.position;
    t.add_row({std::to_string(++checkpoint), truth_s.str(), est_s.str(),
               TextTable::num(distance(e.position, target), 2)});
  }
  std::cout << '\n' << t;

  // 5. Report.
  const std::size_t sig_bytes = map->face_count() * map->dimension();
  const std::size_t cell_bytes = map->grid().cell_count() * 4;
  std::cout << "\nstorage estimate: " << sig_bytes / 1024 << " KiB signatures + "
            << cell_bytes / 1024 << " KiB cell index for "
            << sensors.size() << " sensors\n";
  std::remove(artifact.c_str());
  return 0;
}
